package diplomat

import (
	"errors"
	"testing"

	"cycada/internal/core/profile"
	"cycada/internal/linker"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// domesticLib records the persona each call arrived in — the property
// diplomats exist to guarantee.
type domesticLib struct {
	calls    []string
	personas []kernel.Persona
	errno    int
}

func (d *domesticLib) Symbols() map[string]linker.Fn {
	rec := func(name string) linker.Fn {
		return func(t *kernel.Thread, args ...any) any {
			d.calls = append(d.calls, name)
			d.personas = append(d.personas, t.Persona())
			if d.errno != 0 {
				t.SetErrno(d.errno)
			}
			if len(args) > 0 {
				return args[0]
			}
			return "ret:" + name
		}
	}
	return map[string]linker.Fn{
		"glDoWork":  rec("glDoWork"),
		"glOther":   rec("glOther"),
		"aegl_help": rec("aegl_help"),
	}
}

func env(t *testing.T) (*kernel.Thread, Config, *domesticLib) {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	p, err := k.NewProcess("app", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	lib := &domesticLib{}
	l := linker.New(p)
	l.MustRegister(&linker.Blueprint{
		Name: "libdomestic.so",
		New:  func(ctx *linker.LoadContext) (linker.Instance, error) { return lib, nil },
	})
	h, err := l.Dlopen(p.Main(), "libdomestic.so")
	if err != nil {
		t.Fatal(err)
	}
	return p.Main(), Config{
		Foreign:  kernel.PersonaIOS,
		Domestic: kernel.PersonaAndroid,
		Linker:   l,
		Library:  h,
	}, lib
}

func TestDirectDiplomatSwitchesPersona(t *testing.T) {
	th, cfg, lib := env(t)
	d, err := New(cfg, "glDoWork", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := th.Persona(); got != kernel.PersonaIOS {
		t.Fatalf("starting persona = %v", got)
	}
	ret := d.Call(th, 42)
	if ret != 42 {
		t.Fatalf("ret = %v, want echoed arg", ret)
	}
	// Step 6 ran in the domestic persona…
	if lib.personas[0] != kernel.PersonaAndroid {
		t.Fatalf("domestic call in persona %v", lib.personas[0])
	}
	// …steps 8+ switched back.
	if got := th.Persona(); got != kernel.PersonaIOS {
		t.Fatalf("persona after return = %v, want ios", got)
	}
}

func TestErrnoConversion(t *testing.T) {
	th, cfg, lib := env(t)
	lib.errno = 22
	d, err := New(cfg, "glDoWork", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Call(th)
	// Step 9: the domestic errno appears in the foreign persona's TLS.
	if got := th.ErrnoIn(kernel.PersonaIOS); got != 22 {
		t.Fatalf("foreign errno = %d, want 22", got)
	}
}

func TestPreludePostludeRunInForeignPersona(t *testing.T) {
	th, cfg, _ := env(t)
	var hookPersonas []kernel.Persona
	cfg.Hooks = &Hooks{
		GL:       true,
		Prelude:  func(t *kernel.Thread) { hookPersonas = append(hookPersonas, t.Persona()) },
		Postlude: func(t *kernel.Thread) { hookPersonas = append(hookPersonas, t.Persona()) },
	}
	d, err := New(cfg, "glDoWork", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Call(th)
	if len(hookPersonas) != 2 {
		t.Fatalf("hooks ran %d times", len(hookPersonas))
	}
	for i, p := range hookPersonas {
		if p != kernel.PersonaIOS {
			t.Fatalf("hook %d ran in %v, want the foreign persona", i, p)
		}
	}
}

func TestIndirectWrapperRedirects(t *testing.T) {
	th, cfg, lib := env(t)
	// APPLE→NV style: the diplomat named glSetFenceAPPLE calls glOther.
	d, err := New(cfg, "glSetFenceAPPLE", Indirect, func(t *kernel.Thread, domestic func(string, ...any) any, args []any) any {
		return domestic("glOther", args...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Call(th); got != "ret:glOther" {
		t.Fatalf("ret = %v", got)
	}
	if len(lib.calls) != 1 || lib.calls[0] != "glOther" {
		t.Fatalf("calls = %v", lib.calls)
	}
}

func TestDataDependentMayNotCallDomestic(t *testing.T) {
	th, cfg, lib := env(t)
	d, err := New(cfg, "glGetString", DataDependent, func(t *kernel.Thread, domestic func(string, ...any) any, args []any) any {
		if len(args) > 0 && args[0] == "apple-param" {
			return "" // foreign-side answer, no domestic call
		}
		return domestic("glDoWork", args...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Call(th, "apple-param"); got != "" {
		t.Fatalf("ret = %v", got)
	}
	if len(lib.calls) != 0 {
		t.Fatal("domestic function called for the Apple parameter")
	}
	if th.Persona() != kernel.PersonaIOS {
		t.Fatal("persona corrupted by a no-domestic-call diplomat")
	}
	d.Call(th, "other")
	if len(lib.calls) != 1 {
		t.Fatal("pass-through path did not call domestic")
	}
}

func TestMultiDiplomatTarget(t *testing.T) {
	th, cfg, lib := env(t)
	d, err := New(cfg, "glDeleteTextures", Multi, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Target = "aegl_help"
	d.Call(th)
	if len(lib.calls) != 1 || lib.calls[0] != "aegl_help" {
		t.Fatalf("calls = %v, want the coalesced helper", lib.calls)
	}
}

func TestUnimplementedReturnsError(t *testing.T) {
	th, cfg, lib := env(t)
	d, err := New(cfg, "glFenceSyncAPPLE", Unimplemented, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret := d.Call(th)
	if e, ok := ret.(error); !ok || !errors.Is(e, ErrUnimplemented) {
		t.Fatalf("ret = %v", ret)
	}
	if len(lib.calls) != 0 {
		t.Fatal("unimplemented diplomat called something")
	}
}

func TestConstructionValidation(t *testing.T) {
	_, cfg, _ := env(t)
	w := func(*kernel.Thread, func(string, ...any) any, []any) any { return nil }
	if _, err := New(cfg, "x", Direct, w); err == nil {
		t.Error("direct with wrapper accepted")
	}
	if _, err := New(cfg, "x", Indirect, nil); err == nil {
		t.Error("indirect without wrapper accepted")
	}
	if _, err := New(cfg, "x", Kind(99), nil); err == nil {
		t.Error("bad kind accepted")
	}
	bad := cfg
	bad.Library = nil
	if _, err := New(bad, "x", Direct, nil); err == nil {
		t.Error("missing library accepted")
	}
}

func TestMissingSymbolSurfacesError(t *testing.T) {
	th, cfg, _ := env(t)
	d, err := New(cfg, "glNotExported", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret := d.Call(th)
	if e, ok := ret.(error); !ok || !errors.Is(e, linker.ErrNoSymbol) {
		t.Fatalf("ret = %v, want ErrNoSymbol", ret)
	}
}

func TestProfilerRecordsCalls(t *testing.T) {
	th, cfg, _ := env(t)
	prof := profile.New()
	cfg.Profiler = prof
	d, err := New(cfg, "glDoWork", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Call(th)
	d.Call(th)
	if prof.Calls("glDoWork") != 2 {
		t.Fatalf("profiled calls = %d", prof.Calls("glDoWork"))
	}
	if prof.Samples()[0].Total <= 0 {
		t.Fatal("no time recorded")
	}
}

// Regression: Call must check for the Unimplemented kind before any
// profiling. The ten never-called Table 2 functions previously got a metric
// row recorded on every call, which would surface them in the Figure 7-10
// profiles.
func TestUnimplementedNotProfiled(t *testing.T) {
	th, cfg, _ := env(t)
	prof := profile.New()
	cfg.Profiler = prof
	d, err := New(cfg, "glFenceSyncAPPLE", Unimplemented, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := th.VTime()
	d.Call(th)
	d.Call(th)
	if n := prof.Calls("glFenceSyncAPPLE"); n != 0 {
		t.Fatalf("unimplemented diplomat profiled %d calls", n)
	}
	if s := prof.Samples(); len(s) != 0 {
		t.Fatalf("samples = %v, want none", s)
	}
	if th.VTime() != start {
		t.Fatal("unimplemented diplomat charged foreign-visible time")
	}
}

func TestRegistryCensus(t *testing.T) {
	_, cfg, _ := env(t)
	r := NewRegistry(cfg)
	if _, err := r.Add("glDoWork", Direct, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("glOther", Multi, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("glDoWork", Direct, nil); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	c := r.Census()
	if c[Direct] != 1 || c[Multi] != 1 {
		t.Fatalf("census = %v", c)
	}
	if _, ok := r.Get("glOther"); !ok {
		t.Fatal("Get failed")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Direct: "direct", Indirect: "indirect", DataDependent: "data-dependent",
		Multi: "multi", Unimplemented: "unimplemented", Kind(0): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Table 3 cost structure: diplomat ≈ two persona-switch syscalls + fixed
// machinery, and the hook variants add their measured increments.
func TestCallCostStructure(t *testing.T) {
	th, cfg, _ := env(t)
	costs := th.Costs()
	measure := func(d *Diplomat) vclock.Duration {
		start := th.VTime()
		d.Call(th)
		return th.VTime() - start
	}
	bare, _ := New(cfg, "glDoWork", Direct, nil)
	bareCost := measure(bare)
	floor := costs.SyscallEntryCycadaIOS + costs.SyscallEntryCycada
	if bareCost <= floor {
		t.Fatalf("diplomat cost %v below two traps %v", bareCost, floor)
	}
	cfgE := cfg
	cfgE.Hooks = &Hooks{}
	withEmpty, _ := New(cfgE, "glDoWork", Direct, nil)
	emptyCost := measure(withEmpty)
	if emptyCost-bareCost != 2*costs.PreludeEmpty {
		t.Fatalf("empty hook delta = %v, want %v", emptyCost-bareCost, 2*costs.PreludeEmpty)
	}
	cfgG := cfg
	cfgG.Hooks = &Hooks{GL: true}
	withGL, _ := New(cfgG, "glDoWork", Direct, nil)
	glCost := measure(withGL)
	if glCost-bareCost != costs.GLPrelude+costs.GLPostlude {
		t.Fatalf("GL hook delta = %v, want %v", glCost-bareCost, costs.GLPrelude+costs.GLPostlude)
	}
}
