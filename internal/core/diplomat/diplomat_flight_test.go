// Flight-recorder integration: an isolated diplomat panic must dump the
// black box, and the dump must contain both the triggering panic marker and
// the span tail of the calls that led there.
package diplomat

import (
	"bytes"
	"strings"
	"testing"

	"cycada/internal/linker"
	"cycada/internal/obs"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func TestPanicDumpsFlightRecorder(t *testing.T) {
	fl := obs.NewFlightRecorder()
	var buf bytes.Buffer
	fl.SetOutput(&buf)

	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada, Flight: fl})
	p, err := k.NewProcess("app", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	l := linker.New(p)
	l.MustRegister(&linker.Blueprint{
		Name: "libcrash.so",
		New:  func(ctx *linker.LoadContext) (linker.Instance, error) { return crashLib{}, nil },
	})
	h, err := l.Dlopen(p.Main(), "libcrash.so")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Foreign:  kernel.PersonaIOS,
		Domestic: kernel.PersonaAndroid,
		Linker:   l,
		Library:  h,
	}
	fine, err := New(cfg, "glFine", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom, err := New(cfg, "glBoom", Direct, nil)
	if err != nil {
		t.Fatal(err)
	}

	th := p.Main()
	// Successful calls first, so the dump carries the event tail that led to
	// the panic, not just the trigger.
	for i := 0; i < 3; i++ {
		if ret := fine.Call(th); ret != "ok" {
			t.Fatalf("glFine = %v", ret)
		}
	}
	if fl.Dumps() != 0 {
		t.Fatalf("dumps before the panic = %d", fl.Dumps())
	}

	if _, ok := boom.Call(th).(error); !ok {
		t.Fatal("glBoom did not surface a PanicError")
	}
	if fl.Dumps() != 1 {
		t.Fatalf("dumps after the isolated panic = %d, want 1", fl.Dumps())
	}
	d := fl.Dump("inspect")
	if !d.Contains("diplomat_panic:glBoom") {
		t.Fatalf("dump missing the triggering panic marker:\n%s", d)
	}
	if !d.Contains("diplomat:glFine") {
		t.Fatalf("dump missing the preceding call spans:\n%s", d)
	}
	// The automatic dump rendered to the configured output, not stderr.
	out := buf.String()
	if !strings.Contains(out, "flight recorder dump: diplomat_panic:glBoom") ||
		!strings.Contains(out, "diplomat:glFine") {
		t.Fatalf("auto-dump rendering incomplete:\n%s", out)
	}
}
