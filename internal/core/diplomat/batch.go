package diplomat

import (
	"fmt"

	"cycada/internal/core/callconv"
	"cycada/internal/fault"
	"cycada/internal/obs"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// Batcher dispatches a whole callconv batch through one impersonation window:
// one prelude, one persona switch in, N domestic invocations in append order,
// one persona switch out, one errno conversion, one postlude. This is the §3
// call sequence with steps 2-5 and 7-10 amortized across the run — the
// per-call cost collapses to the symbol dereference and the function itself.
//
// A Batcher is built from the same Config as the library's diplomats, so the
// personas, hooks, and poison policy are identical to the serial path.
type Batcher struct {
	foreign  kernel.Persona
	domestic kernel.Persona
	hooks    *Hooks
	poison   func(t *kernel.Thread)
}

// NewBatcher creates a batch dispatcher for one diplomatic library.
func NewBatcher(cfg Config) *Batcher {
	return &Batcher{
		foreign:  cfg.Foreign,
		domestic: cfg.Domestic,
		hooks:    cfg.Hooks,
		poison:   cfg.Poison,
	}
}

// Dispatch runs every frame of the batch inside a single impersonation
// window on t (the batch's owner thread). lookup maps a frame's FuncID to
// its diplomat; after, when non-nil, is invoked in the foreign-visible call
// order for every frame that completed without an isolated panic — the tap
// seam that keeps the logical call stream identical to serial execution.
//
// Dispatch returns dispatched=false without having run any frame when the
// window itself could not be opened (an injected batch_flush fault); the
// caller then degrades to per-call windows. With dispatched=true, every
// frame ran exactly once; err carries the first isolated panic, if any, with
// its CallIndex set to the faulting frame's position.
//
// Determinism: frames decode strictly in append order on the owner thread's
// identity. A frame that panics poisons the context and reports ENOMEM
// exactly as a serial call would, and the frames after it still execute —
// the same observable history as N serial calls where one crashed.
func (b *Batcher) Dispatch(t *kernel.Thread, batch *callconv.Batch, lookup func(callconv.FuncID) *Diplomat, after func(i int, fr *callconv.Frame, ret any)) (dispatched bool, err error) {
	sp := t.TraceBegin(obs.CatBatch, "batch:dispatch")
	start := t.VTime()

	// Step 2, once: prelude in the foreign persona.
	runHooks(t, b.hooks, true)

	// The window-open seam: an injected batch_flush fault means the single
	// shared window could not be established. Nothing has crossed yet, so the
	// postlude rebalances the prelude and the caller re-dispatches serially.
	if inj := t.Faults(); inj != nil {
		if ferr := inj.Fail(fault.PointBatchFlush); ferr != nil {
			runHooks(t, b.hooks, false)
			t.TraceEnd(sp)
			return false, ferr
		}
	}

	c := t.Costs()
	// Step 3, once: the encoded run is stored across the boundary.
	t.ChargeCPU(c.ArgSave)
	// Step 4, once: set_persona to the domestic persona.
	if perr := t.SetPersona(b.domestic); perr != nil {
		runHooks(t, b.hooks, false)
		t.TraceEnd(sp)
		return false, perr
	}
	// Step 5, once: the run is restored bridge-side.
	t.ChargeCPU(c.ArgRestore)

	var poisoned bool
	for i := 0; i < batch.Len(); i++ {
		fr := batch.Frame(i)
		ret := b.dispatchFrame(t, i, fr, lookup, &poisoned, &err)
		if after != nil {
			if _, isPanic := ret.(*PanicError); !isPanic {
				after(i, fr, ret)
			}
		}
	}

	domesticErrno := t.Errno()
	// Step 7, once: return values saved.
	t.ChargeCPU(c.RetSaveRestore / 2)
	// Step 8, once: set_persona back to the foreign persona.
	if perr := t.SetPersona(b.foreign); perr != nil {
		t.TraceEnd(sp)
		return true, perr
	}
	// Step 9, once: domestic TLS values converted into foreign TLS.
	t.ChargeCPU(c.ErrnoConvert)
	t.SetErrnoIn(b.foreign, domesticErrno)

	// Step 10, once: postlude in the foreign persona.
	runHooks(t, b.hooks, false)
	// Step 11, once: control returns to the encoder.
	t.ChargeCPU(c.RetSaveRestore / 2)
	t.FlightRecord(obs.FlightSpan, obs.CatBatch, "batch:dispatch", int64(t.VTime()-start))
	t.TraceEnd(sp)
	return true, err
}

// dispatchFrame decodes and invokes one frame inside the open window, with
// per-frame panic isolation: a crash in domestic code degrades this one call
// (ENOMEM, context poisoned, flight-recorder dump) and the window continues
// with the next frame, matching the serial path where later calls still run
// on the poisoned context. The first panic is recorded into *firstErr with
// the faulting call index.
func (b *Batcher) dispatchFrame(t *kernel.Thread, i int, fr *callconv.Frame, lookup func(callconv.FuncID) *Diplomat, poisoned *bool, firstErr *error) (ret any) {
	d := lookup(fr.ID())
	if d == nil {
		return fmt.Errorf("batch: no diplomat for %s", callconv.Name(fr.ID()))
	}
	start := t.VTime()

	defer func() {
		if r := recover(); r != nil {
			ret = b.frameRecovered(t, d, i, r, start, poisoned, firstErr)
		}
	}()

	// The per-call crash seam stays per-call: a fault schedule that crashes
	// the domestic half of one call inside a batch must hit exactly that
	// call, not the whole run.
	if inj := t.Faults(); inj != nil {
		if ferr := inj.Fail(fault.PointDiplomatPanic); ferr != nil {
			panic(ferr)
		}
	}

	sym, err := d.resolve(t, d.funcID())
	if err != nil {
		return err
	}
	// Step 6: direct invocation through the cached symbol, already in the
	// domestic persona.
	ret = sym.CallFrame(t, fr)
	d.finish(t, start)
	return ret
}

// frameRecovered is the mid-batch analogue of Diplomat.recovered. The window
// stays open — the thread is re-pinned to the domestic persona so the
// remaining frames decode on the right identity — and the foreign-visible
// effects (ENOMEM errno, poisoned context, flight-recorder dump) are staged
// through the domestic TLS slot so the window-close conversion propagates
// them exactly as a serial call's step 9 would.
func (b *Batcher) frameRecovered(t *kernel.Thread, d *Diplomat, i int, r any, start vclock.Duration, poisoned *bool, firstErr *error) error {
	safely := func(f func()) {
		defer func() { recover() }()
		f()
	}
	safely(func() { t.SetPersona(b.domestic) })
	safely(func() { t.SetErrnoIn(b.domestic, int(kernel.ENOMEM)) })
	if b.poison != nil && !*poisoned {
		*poisoned = true
		safely(func() { b.poison(t) })
	}
	d.finish(t, start)
	if t.TraceEnabled() {
		t.TraceEnd(t.TraceBegin(obs.CatFault, d.panicName))
	}
	t.FlightRecord(obs.FlightMark, obs.CatFault, d.panicName, 0)
	t.FlightDump(d.panicName)
	perr := &PanicError{Diplomat: d.Name, Reason: r, CallIndex: i}
	if *firstErr == nil {
		*firstErr = perr
	}
	return perr
}
