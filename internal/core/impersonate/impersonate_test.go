package impersonate

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"cycada/internal/android/libc"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func env(t *testing.T) (*kernel.Process, *Manager, *libc.Lib, *libc.Lib) {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	p, err := k.NewProcess("app", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	bionic := libc.New(kernel.PersonaAndroid)
	libSystem := libc.New(kernel.PersonaIOS)
	return p, New(bionic, libSystem), bionic, libSystem
}

func TestGatedKeyDiscovery(t *testing.T) {
	_, m, bionic, _ := env(t)
	defer m.Close()

	// Keys created outside the gate are not graphics keys.
	bionic.CreateKey("random-app-key")
	if got := m.AndroidGraphicsKeys(); len(got) != 0 {
		t.Fatalf("ungated key recorded: %v", got)
	}
	// Keys created under the gate are.
	var gfx int
	m.Gated(func() { gfx = bionic.CreateKey("gles-current-context") })
	if got := m.AndroidGraphicsKeys(); len(got) != 1 || got[0] != gfx {
		t.Fatalf("graphics keys = %v, want [%d]", got, gfx)
	}
	// Deletion removes it regardless of gating.
	bionic.DeleteKey(gfx)
	if got := m.AndroidGraphicsKeys(); len(got) != 0 {
		t.Fatalf("deleted key still tracked: %v", got)
	}
}

func TestGateNesting(t *testing.T) {
	_, m, bionic, _ := env(t)
	defer m.Close()
	m.GateEnter()
	m.GateEnter()
	m.GateExit()
	k := bionic.CreateKey("still-gated")
	m.GateExit()
	m.GateExit() // extra exits are harmless
	if got := m.AndroidGraphicsKeys(); len(got) != 1 || got[0] != k {
		t.Fatalf("nested gate lost key: %v", got)
	}
}

func TestImpersonationMigratesAndRestores(t *testing.T) {
	p, m, bionic, _ := env(t)
	defer m.Close()
	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	runner := p.NewThread("runner")

	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")
	target.TLSSet(kernel.PersonaIOS, 40, "target-eagl")
	runner.TLSSet(kernel.PersonaAndroid, aKey, "runner-gl")

	s, err := m.Impersonate(runner, target)
	if err != nil {
		t.Fatal(err)
	}
	// (3): the runner now holds the target's graphics TLS in both personas.
	if v, _ := runner.TLSGet(kernel.PersonaAndroid, aKey); v != "target-gl" {
		t.Fatalf("android slot = %v", v)
	}
	if v, _ := runner.TLSGet(kernel.PersonaIOS, 40); v != "target-eagl" {
		t.Fatalf("ios slot = %v", v)
	}
	// Identity assumed.
	if runner.Effective() != target {
		t.Fatal("effective identity not assumed")
	}
	// (4): updates made while impersonating reflect back to the target.
	runner.TLSSet(kernel.PersonaAndroid, aKey, "updated-gl")
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if v, _ := target.TLSGet(kernel.PersonaAndroid, aKey); v != "updated-gl" {
		t.Fatalf("update not reflected to target: %v", v)
	}
	// (5): the runner's own TLS restored.
	if v, _ := runner.TLSGet(kernel.PersonaAndroid, aKey); v != "runner-gl" {
		t.Fatalf("runner TLS not restored: %v", v)
	}
	if runner.Impersonating() != nil {
		t.Fatal("identity not dropped")
	}
}

func TestImpersonationDeletesSlotsAbsentOnTarget(t *testing.T) {
	p, m, bionic, _ := env(t)
	defer m.Close()
	var key int
	m.Gated(func() { key = bionic.CreateKey("gles-ctx") })
	target := p.Main()
	runner := p.NewThread("runner")
	runner.TLSSet(kernel.PersonaAndroid, key, "runner-only")

	s, err := m.Impersonate(runner, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := runner.TLSGet(kernel.PersonaAndroid, key); ok {
		t.Fatal("slot absent on target should be cleared on runner")
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if v, _ := runner.TLSGet(kernel.PersonaAndroid, key); v != "runner-only" {
		t.Fatalf("runner slot not restored: %v", v)
	}
}

func TestSelfImpersonationRejected(t *testing.T) {
	p, m, _, _ := env(t)
	defer m.Close()
	if _, err := m.Impersonate(p.Main(), p.Main()); err == nil {
		t.Fatal("self impersonation succeeded")
	}
}

func TestDoubleEndRejected(t *testing.T) {
	p, m, _, _ := env(t)
	defer m.Close()
	s, err := m.Impersonate(p.NewThread("a"), p.Main())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err == nil {
		t.Fatal("double End succeeded")
	}
}

func TestNestedImpersonationRejectedByKernel(t *testing.T) {
	p, m, _, _ := env(t)
	defer m.Close()
	a := p.NewThread("a")
	s, err := m.Impersonate(a, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer s.End()
	if _, err := m.Impersonate(a, p.NewThread("b")); err == nil {
		t.Fatal("nested impersonation succeeded")
	}
}

func TestRegisterAndroidGraphicsKey(t *testing.T) {
	_, m, _, _ := env(t)
	defer m.Close()
	m.RegisterAndroidGraphicsKey(123)
	if got := m.AndroidGraphicsKeys(); len(got) != 1 || got[0] != 123 {
		t.Fatalf("keys = %v", got)
	}
	if got := m.IOSGraphicsKeys(); len(got) != 0 {
		t.Fatalf("ios keys = %v", got)
	}
}

func TestCloseStopsDiscovery(t *testing.T) {
	_, m, bionic, _ := env(t)
	m.Close()
	m.GateEnter()
	bionic.CreateKey("late")
	m.GateExit()
	if got := m.AndroidGraphicsKeys(); len(got) != 0 {
		t.Fatalf("closed manager recorded %v", got)
	}
}

// Regression: Close used to read and call m.unhook without holding m.mu,
// racing with the key-hook callback and double-unhooking on repeated Close.
func TestCloseIsIdempotentAndRaceFree(t *testing.T) {
	_, m, bionic, _ := env(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			m.Close()
		}()
		go func(i int) {
			defer wg.Done()
			m.Gated(func() { bionic.CreateKey(fmt.Sprintf("key-%d", i)) })
		}(i)
	}
	wg.Wait()
	m.Close() // still safe after everything settled
}

// Regression: End used to return on the first propagate_tls failure, leaving
// the runner stuck with the target's graphics TLS. Every step must be
// best-effort: a failed reflect of one persona must not stop the other
// persona's reflect, and the runner's own TLS must always be restored.
func TestEndBestEffortOnPropagateFault(t *testing.T) {
	p, m, bionic, _ := env(t)
	defer m.Close()
	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	runner := p.NewThread("runner")
	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")
	target.TLSSet(kernel.PersonaIOS, 40, "target-eagl")
	runner.TLSSet(kernel.PersonaAndroid, aKey, "runner-gl")
	runner.TLSSet(kernel.PersonaIOS, 40, "runner-eagl")

	s, err := m.Impersonate(runner, target)
	if err != nil {
		t.Fatal(err)
	}
	runner.TLSSet(kernel.PersonaAndroid, aKey, "new-gl")
	runner.TLSSet(kernel.PersonaIOS, 40, "new-eagl")

	// Inject: reflecting the Android persona back to the target fails.
	real := m.propagate
	m.propagate = func(t *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		if tid == target.TID() && pe == kernel.PersonaAndroid {
			return fmt.Errorf("injected android fault")
		}
		return real(t, tid, pe, vals)
	}
	err = s.End()
	if err == nil || !strings.Contains(err.Error(), "injected android fault") {
		t.Fatalf("End error = %v, want the injected fault", err)
	}
	// The iOS reflect still ran despite the Android failure.
	if v, _ := target.TLSGet(kernel.PersonaIOS, 40); v != "new-eagl" {
		t.Fatalf("ios reflect skipped: target slot = %v", v)
	}
	// Above all, the runner got its own TLS back in both personas.
	if v, _ := runner.TLSGet(kernel.PersonaAndroid, aKey); v != "runner-gl" {
		t.Fatalf("runner android TLS not restored: %v", v)
	}
	if v, _ := runner.TLSGet(kernel.PersonaIOS, 40); v != "runner-eagl" {
		t.Fatalf("runner ios TLS not restored: %v", v)
	}
	if runner.Impersonating() != nil {
		t.Fatal("identity not dropped")
	}
}

// All failures are reported together (errors.Join), not just the first.
func TestEndJoinsAllErrors(t *testing.T) {
	p, m, bionic, _ := env(t)
	defer m.Close()
	m.Gated(func() { bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)
	target := p.Main()
	runner := p.NewThread("runner")

	s, err := m.Impersonate(runner, target)
	if err != nil {
		t.Fatal(err)
	}
	real := m.propagate
	m.propagate = func(t *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		if tid == target.TID() {
			return fmt.Errorf("injected %v fault", pe)
		}
		return real(t, tid, pe, vals)
	}
	err = s.End()
	if err == nil {
		t.Fatal("End succeeded despite two faults")
	}
	for _, want := range []string{"injected android fault", "injected ios fault"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("End error %q missing %q", err, want)
		}
	}
}
