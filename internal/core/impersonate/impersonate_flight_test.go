// Flight-recorder integration: a fired TLS rollback — a migration failed
// mid-transaction — must dump the black box with the rollback marker in it.
package impersonate

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cycada/internal/android/libc"
	"cycada/internal/obs"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func TestRollbackDumpsFlightRecorder(t *testing.T) {
	fl := obs.NewFlightRecorder()
	var buf bytes.Buffer
	fl.SetOutput(&buf)

	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada, Flight: fl})
	p, err := k.NewProcess("app", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	bionic := libc.New(kernel.PersonaAndroid)
	libSystem := libc.New(kernel.PersonaIOS)
	m := New(bionic, libSystem)
	defer m.Close()

	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	runner := p.NewThread("runner")
	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")
	target.TLSSet(kernel.PersonaIOS, 40, "target-eagl")
	runner.TLSSet(kernel.PersonaAndroid, aKey, "runner-gl")

	real := m.propagate
	m.propagate = func(th *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		if tid == runner.TID() && pe == kernel.PersonaIOS {
			return fmt.Errorf("injected ios migration fault")
		}
		return real(th, tid, pe, vals)
	}
	if _, err := m.Impersonate(runner, target); err == nil {
		t.Fatal("Impersonate succeeded despite the injected migration fault")
	}

	if fl.Dumps() != 1 {
		t.Fatalf("dumps after the rollback = %d, want 1", fl.Dumps())
	}
	d := fl.Dump("inspect")
	if !d.Contains("impersonation_rollback") {
		t.Fatalf("dump missing the rollback marker:\n%s", d)
	}
	if !strings.Contains(buf.String(), "flight recorder dump: impersonation_rollback") {
		t.Fatalf("auto-dump did not render to the configured output:\n%s", buf.String())
	}
}
