// Transactional-impersonation tests: a propagate_tls failure partway through
// a session start must roll the runner's TLS back to its exact pre-session
// state — never leave it half-migrated — and the session accounting must show
// nothing active afterwards.
package impersonate

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cycada/internal/android/libc"
	"cycada/internal/fault"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// faultEnv is env plus access to the kernel, for installing fault injectors.
func faultEnv(t *testing.T) (*kernel.Kernel, *kernel.Process, *Manager, *libc.Lib) {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	p, err := k.NewProcess("app", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	bionic := libc.New(kernel.PersonaAndroid)
	libSystem := libc.New(kernel.PersonaIOS)
	return k, p, New(bionic, libSystem), bionic
}

// tlsSnapshot captures the runner's graphics TLS in both personas.
func tlsSnapshot(t *kernel.Thread, m *Manager) map[string]any {
	snap := map[string]any{}
	for _, k := range m.AndroidGraphicsKeys() {
		v, ok := t.TLSGet(kernel.PersonaAndroid, k)
		snap[fmt.Sprintf("a/%d", k)] = [2]any{v, ok}
	}
	for _, k := range m.IOSGraphicsKeys() {
		v, ok := t.TLSGet(kernel.PersonaIOS, k)
		snap[fmt.Sprintf("i/%d", k)] = [2]any{v, ok}
	}
	return snap
}

func requireTLSEqual(t *testing.T, want, got map[string]any) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("TLS snapshot size changed: %d -> %d", len(want), len(got))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("TLS slot %s = %v, want %v", k, got[k], w)
		}
	}
}

// The iOS propagate failing after the Android persona has already been
// migrated must roll the Android persona back: the runner's TLS ends
// byte-identical to its pre-session state.
func TestImpersonateRollsBackOnIOSPropagateFault(t *testing.T) {
	_, p, m, bionic := faultEnv(t)
	defer m.Close()
	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	runner := p.NewThread("runner")
	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")
	target.TLSSet(kernel.PersonaIOS, 40, "target-eagl")
	runner.TLSSet(kernel.PersonaAndroid, aKey, "runner-gl")
	runner.TLSSet(kernel.PersonaIOS, 40, "runner-eagl")
	before := tlsSnapshot(runner, m)

	real := m.propagate
	m.propagate = func(th *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		if tid == runner.TID() && pe == kernel.PersonaIOS {
			return fmt.Errorf("injected ios migration fault")
		}
		return real(th, tid, pe, vals)
	}
	_, err := m.Impersonate(runner, target)
	if err == nil || !strings.Contains(err.Error(), "injected ios migration fault") {
		t.Fatalf("Impersonate error = %v, want the injected fault", err)
	}
	requireTLSEqual(t, before, tlsSnapshot(runner, m))
	if runner.Impersonating() != nil {
		t.Fatal("runner assumed identity despite failed migration")
	}
	if got := m.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d after failed Impersonate, want 0", got)
	}

	// The manager is intact: the same call succeeds once the fault clears.
	m.propagate = real
	s, err := m.Impersonate(runner, target)
	if err != nil {
		t.Fatalf("Impersonate after fault cleared: %v", err)
	}
	if got := m.ActiveSessions(); got != 1 {
		t.Fatalf("ActiveSessions = %d during session, want 1", got)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	requireTLSEqual(t, before, tlsSnapshot(runner, m))
	if got := m.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d after End, want 0", got)
	}
}

// A rollback that itself keeps failing is reported, not swallowed: the error
// names both the original fault and the failed rollback.
func TestImpersonateReportsFailedRollback(t *testing.T) {
	_, p, m, bionic := faultEnv(t)
	defer m.Close()
	m.Gated(func() { bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)
	target := p.Main()
	runner := p.NewThread("runner")

	calls := 0
	m.propagate = func(th *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		calls++
		if calls == 1 {
			return nil // Android migration lands
		}
		return fmt.Errorf("persistent propagate fault")
	}
	_, err := m.Impersonate(runner, target)
	if err == nil {
		t.Fatal("Impersonate succeeded despite persistent faults")
	}
	if !strings.Contains(err.Error(), "TLS rollback failed") {
		t.Fatalf("error %q does not report the failed rollback", err)
	}
	// 1 android + 1 ios + rollbackAttempts retries of the rollback.
	if want := 2 + rollbackAttempts; calls != want {
		t.Fatalf("propagate called %d times, want %d (bounded rollback retry)", calls, want)
	}
}

// The same transactionality through the kernel seam: a deterministic injector
// fails the second propagate_tls syscall (the iOS migration), the bounded
// retry lands the rollback, and the runner's TLS is untouched.
func TestImpersonateRollsBackUnderInjectedSyscallFault(t *testing.T) {
	k, p, m, bionic := faultEnv(t)
	defer m.Close()
	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	runner := p.NewThread("runner")
	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")
	runner.TLSSet(kernel.PersonaAndroid, aKey, "runner-gl")
	runner.TLSSet(kernel.PersonaIOS, 40, "runner-eagl")
	before := tlsSnapshot(runner, m)

	k.SetFaultInjector(fault.NewInjector(fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointPropagateTLS}, After: 1, Times: 1,
	}))
	_, err := m.Impersonate(runner, target)
	if !fault.Injected(err) {
		t.Fatalf("Impersonate error = %v, want injected propagate_tls fault", err)
	}
	requireTLSEqual(t, before, tlsSnapshot(runner, m))
	if got := m.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d, want 0", got)
	}
	if runner.Impersonating() != nil {
		t.Fatal("runner left impersonating")
	}
}

// Concurrent sessions with a seam that fails every third iOS-persona
// propagate: whatever mix of failed starts, degraded Ends and clean runs
// results, the accounting must settle at zero active sessions and every
// runner must leave with its own TLS (the Android persona stays fault-free,
// so its rollbacks and restores always land and the TLS assertion is
// deterministic). Run under -race this also exercises the counters'
// concurrency.
func TestConcurrentSessionsSettleUnderFaults(t *testing.T) {
	_, p, m, bionic := faultEnv(t)
	defer m.Close()
	var aKey int
	m.Gated(func() { aKey = bionic.CreateKey("gles-ctx") })
	m.RegisterIOSGraphicsKey(40)

	target := p.Main()
	target.TLSSet(kernel.PersonaAndroid, aKey, "target-gl")

	var calls atomic.Uint64
	real := m.propagate
	m.propagate = func(th *kernel.Thread, tid int, pe kernel.Persona, vals map[int]any) error {
		if pe == kernel.PersonaIOS && calls.Add(1)%3 == 0 {
			return fmt.Errorf("every-third ios propagate fault")
		}
		return real(th, tid, pe, vals)
	}

	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		runner := p.NewThread(fmt.Sprintf("runner-%d", i))
		own := fmt.Sprintf("own-gl-%d", i)
		runner.TLSSet(kernel.PersonaAndroid, aKey, own)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 16; n++ {
				s, err := m.Impersonate(runner, target)
				if err != nil {
					continue
				}
				s.End() // best-effort under faults; errors are acceptable
			}
			if v, _ := runner.TLSGet(kernel.PersonaAndroid, aKey); v != own {
				t.Errorf("runner TLS = %v after sessions, want %v", v, own)
			}
		}()
	}
	wg.Wait()
	if got := m.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d after all sessions, want 0", got)
	}
	if got := m.GateDepth(); got != 0 {
		t.Fatalf("GateDepth = %d, want 0", got)
	}
}
