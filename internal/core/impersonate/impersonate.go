// Package impersonate implements thread impersonation — the paper's second
// contribution (§7.1). A running thread temporarily assumes the identity of
// a target thread (the one that created an Android GLES context), migrating
// the graphics-related TLS slots of both personas between them so that
// Android's creator-only GLES libraries accept the call and see the right
// state.
//
// Graphics-related TLS slots are discovered exactly as in the paper: the
// libc pthread_key_create/pthread_key_delete hooks (the 12-line Bionic
// patch) are gated so they only record keys created while a graphics
// diplomat's prelude has opened the gate — i.e. keys reserved by the
// graphics libraries themselves. Well-known iOS graphics slots are
// registered explicitly, since Apple's libraries are opaque.
package impersonate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cycada/internal/android/libc"
	"cycada/internal/obs"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// Manager tracks graphics TLS slots and performs impersonation sessions.
type Manager struct {
	bionic    *libc.Lib
	libSystem *libc.Lib

	// propagate issues the propagate_tls syscall on behalf of a thread. It
	// exists as a seam so tests can inject partial failures into Session.End;
	// production managers always use the kernel syscall directly.
	propagate func(t *kernel.Thread, targetTID int, p kernel.Persona, vals map[int]any) error

	// active counts sessions between a successful Impersonate and its End —
	// the slot-accounting probe the chaos harness checks for stuck sessions.
	active atomic.Int64

	mu          sync.Mutex
	gateDepth   int
	androidKeys map[int]bool
	iosKeys     map[int]bool
	unhook      func()
}

// New creates a manager over the two libcs and installs the gated Bionic
// key hook.
func New(bionic, libSystem *libc.Lib) *Manager {
	m := &Manager{
		bionic:    bionic,
		libSystem: libSystem,
		propagate: func(t *kernel.Thread, targetTID int, p kernel.Persona, vals map[int]any) error {
			return t.PropagateTLS(targetTID, p, vals)
		},
		androidKeys: map[int]bool{},
		iosKeys:     map[int]bool{},
	}
	m.unhook = bionic.RegisterKeyHook(func(key int, name string, created bool) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if created {
			// "By … gating the Android pthread_key_create and
			// pthread_key_delete hooks in the prelude and postlude of each
			// graphics diplomat", only graphics keys are recorded.
			if m.gateDepth > 0 {
				m.androidKeys[key] = true
			}
			return
		}
		delete(m.androidKeys, key)
	})
	return m
}

// Close removes the Bionic hook. It is idempotent and safe against
// concurrent Impersonate calls and hook callbacks: the hook reference is
// swapped out under m.mu, and the unhook itself runs outside the lock so it
// cannot deadlock against a callback holding libc's hook lock.
func (m *Manager) Close() {
	m.mu.Lock()
	unhook := m.unhook
	m.unhook = nil
	m.mu.Unlock()
	if unhook != nil {
		unhook()
	}
}

// GateEnter opens the graphics gate: keys created until GateExit are
// considered graphics-related. Diplomats' GL preludes call this — once per
// serial call, and once per batched flush window (the batch dispatcher runs
// the prelude/postlude pair around the whole run, so N batched calls nest
// the gate exactly as deep as one serial call would).
func (m *Manager) GateEnter() {
	m.mu.Lock()
	m.gateDepth++
	m.mu.Unlock()
}

// GateExit closes the gate (GL postlude).
func (m *Manager) GateExit() {
	m.mu.Lock()
	if m.gateDepth > 0 {
		m.gateDepth--
	}
	m.mu.Unlock()
}

// GateDepth reports the current graphics-gate nesting depth. Outside any
// diplomat call it must be zero — a stuck prelude gate is one of the chaos
// harness's failure signals.
func (m *Manager) GateDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gateDepth
}

// ActiveSessions reports the number of impersonation sessions that have
// started and not yet ended.
func (m *Manager) ActiveSessions() int64 { return m.active.Load() }

// Gated runs fn with the gate open — the "load graphics libraries under the
// gate" pattern.
func (m *Manager) Gated(fn func()) {
	m.GateEnter()
	defer m.GateExit()
	fn()
}

// RegisterAndroidGraphicsKey records an Android graphics slot allocated
// before the manager existed (the globally-loaded vendor library's
// current-context key).
func (m *Manager) RegisterAndroidGraphicsKey(key int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.androidKeys[key] = true
}

// RegisterIOSGraphicsKey records a well-known Apple graphics TLS slot
// ("we also migrate well-known iOS TLS slots used by Apple graphics
// libraries", §7.1).
func (m *Manager) RegisterIOSGraphicsKey(key int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.iosKeys[key] = true
}

// AndroidGraphicsKeys returns the discovered Android graphics slots, sorted.
func (m *Manager) AndroidGraphicsKeys() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.androidKeys)
}

// IOSGraphicsKeys returns the registered iOS graphics slots, sorted.
func (m *Manager) IOSGraphicsKeys() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.iosKeys)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Session is one active impersonation: the running thread holds the target
// thread's graphics TLS (both personas) and identity until End.
type Session struct {
	m            *Manager
	runner       *kernel.Thread
	target       *kernel.Thread
	savedAndroid map[int]any
	savedIOS     map[int]any
	span         obs.Span        // whole-session span, closed by End
	start        vclock.Duration // runner virtual time at session start
	ended        bool
}

// SessionHistName names the session-length distribution (frame-health
// telemetry) in the owning kernel's histogram registry: Impersonate->End
// virtual time, observed on End.
const SessionHistName = "impersonation-session"

// Impersonate starts an impersonation of target by runner, performing steps
// (3) of §7.1: save the runner's graphics TLS in both personas and replace
// it with the target's, using the locate_tls/propagate_tls syscalls. It also
// assumes the target's kernel-visible identity so creator-only checks pass.
func (m *Manager) Impersonate(runner, target *kernel.Thread) (*Session, error) {
	if runner == target {
		return nil, fmt.Errorf("impersonate: thread cannot impersonate itself")
	}
	sessSp := runner.TraceBegin(obs.CatImpersonation, "impersonation")
	start := runner.VTime()
	s, err := m.impersonate(runner, target)
	if err != nil {
		runner.TraceEnd(sessSp)
		return nil, err
	}
	s.span = sessSp
	s.start = start
	runner.FlightRecord(obs.FlightMark, obs.CatImpersonation, "impersonate_begin", int64(target.TID()))
	return s, nil
}

func (m *Manager) impersonate(runner, target *kernel.Thread) (*Session, error) {
	aKeys := m.AndroidGraphicsKeys()
	iKeys := m.IOSGraphicsKeys()

	sp := runner.TraceBegin(obs.CatImpersonation, "tls_save")
	savedA, err := runner.LocateTLS(runner.TID(), kernel.PersonaAndroid, aKeys)
	if err != nil {
		runner.TraceEnd(sp)
		return nil, fmt.Errorf("impersonate: saving android TLS: %w", err)
	}
	savedI, err := runner.LocateTLS(runner.TID(), kernel.PersonaIOS, iKeys)
	if err != nil {
		runner.TraceEnd(sp)
		return nil, fmt.Errorf("impersonate: saving ios TLS: %w", err)
	}

	targetA, err := runner.LocateTLS(target.TID(), kernel.PersonaAndroid, aKeys)
	if err != nil {
		runner.TraceEnd(sp)
		return nil, fmt.Errorf("impersonate: reading target android TLS: %w", err)
	}
	targetI, err := runner.LocateTLS(target.TID(), kernel.PersonaIOS, iKeys)
	runner.TraceEnd(sp)
	if err != nil {
		return nil, fmt.Errorf("impersonate: reading target ios TLS: %w", err)
	}

	// The migration is transactional: once the runner's Android TLS has been
	// replaced, any later failure must roll the already-replaced personas
	// back to the saved pre-session values before the error is returned —
	// otherwise the runner is left half-migrated, holding the target's
	// graphics TLS with no session to End.
	sp = runner.TraceBegin(obs.CatImpersonation, "tls_replace")
	if err := m.propagate(runner, runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, targetA)); err != nil {
		runner.TraceEnd(sp)
		return nil, err
	}
	if err := m.propagate(runner, runner.TID(), kernel.PersonaIOS, withDeletions(iKeys, targetI)); err != nil {
		rb := m.propagateRetry(runner, runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, savedA))
		runner.TraceEnd(sp)
		dumpRollback(runner, rb)
		return nil, errors.Join(err, rollbackErr(rb))
	}
	err = runner.BeginImpersonation(target)
	runner.TraceEnd(sp)
	if err != nil {
		rbA := m.propagateRetry(runner, runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, savedA))
		rbI := m.propagateRetry(runner, runner.TID(), kernel.PersonaIOS, withDeletions(iKeys, savedI))
		dumpRollback(runner, errors.Join(rbA, rbI))
		return nil, errors.Join(err, rollbackErr(rbA), rollbackErr(rbI))
	}
	m.active.Add(1)
	return &Session{
		m: m, runner: runner, target: target,
		savedAndroid: savedA, savedIOS: savedI,
	}, nil
}

// rollbackAttempts bounds the retries of a rollback or restore propagate:
// these propagations must land for the runner to leave a failed or finished
// session in its pre-session TLS state, so transient faults are retried a
// few times before the failure is surfaced.
const rollbackAttempts = 4

func (m *Manager) propagateRetry(t *kernel.Thread, targetTID int, p kernel.Persona, vals map[int]any) error {
	var err error
	for i := 0; i < rollbackAttempts; i++ {
		if err = m.propagate(t, targetTID, p, vals); err == nil {
			return nil
		}
	}
	return err
}

func rollbackErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("impersonate: TLS rollback failed, runner left with migrated TLS: %w", err)
}

// dumpRollback records the rollback in the flight recorder and dumps it: a
// fired rollback — even one that succeeded — means a TLS migration failed
// mid-transaction, and the dump preserves the event tail that led there.
// The marker's code distinguishes clean rollbacks (0) from failed ones (1).
func dumpRollback(t *kernel.Thread, rbErr error) {
	code := int64(0)
	if rbErr != nil {
		code = 1
	}
	t.FlightRecord(obs.FlightMark, obs.CatImpersonation, "impersonation_rollback", code)
	t.FlightDump("impersonation_rollback")
}

// End finishes the session, performing steps (4) and (5) of §7.1: updates
// the running thread made to the graphics TLS are reflected back into the
// target thread ("the TLS associated with the GLES context"), and the
// runner's original graphics TLS is restored.
//
// Every step is best-effort: a failure reflecting one persona must not stop
// the other persona from being reflected, and above all must not leave the
// runner stuck with the target's graphics TLS — restoration always runs for
// both personas. All failures are reported together via errors.Join.
func (s *Session) End() error {
	if s.ended {
		return fmt.Errorf("impersonate: session already ended")
	}
	s.ended = true
	s.m.active.Add(-1)
	s.runner.EndImpersonation()

	aKeys := s.m.AndroidGraphicsKeys()
	iKeys := s.m.IOSGraphicsKeys()
	var errs []error

	// Step 4: reflect updates back to the target, each persona on its own.
	sp := s.runner.TraceBegin(obs.CatImpersonation, "tls_reflect")
	if curA, err := s.runner.LocateTLS(s.runner.TID(), kernel.PersonaAndroid, aKeys); err != nil {
		errs = append(errs, fmt.Errorf("impersonate: reading android TLS: %w", err))
	} else if err := s.m.propagate(s.runner, s.target.TID(), kernel.PersonaAndroid, withDeletions(aKeys, curA)); err != nil {
		errs = append(errs, fmt.Errorf("impersonate: reflecting android TLS: %w", err))
	}
	if curI, err := s.runner.LocateTLS(s.runner.TID(), kernel.PersonaIOS, iKeys); err != nil {
		errs = append(errs, fmt.Errorf("impersonate: reading ios TLS: %w", err))
	} else if err := s.m.propagate(s.runner, s.target.TID(), kernel.PersonaIOS, withDeletions(iKeys, curI)); err != nil {
		errs = append(errs, fmt.Errorf("impersonate: reflecting ios TLS: %w", err))
	}
	s.runner.TraceEnd(sp)

	// Step 5: restore the runner's own graphics TLS in both personas,
	// regardless of what happened above. Restoration is retried (bounded):
	// a transient fault here would otherwise strand the runner with the
	// target's graphics TLS after the session is gone.
	sp = s.runner.TraceBegin(obs.CatImpersonation, "tls_restore")
	var restoreErr error
	if err := s.m.propagateRetry(s.runner, s.runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, s.savedAndroid)); err != nil {
		restoreErr = errors.Join(restoreErr, err)
		errs = append(errs, fmt.Errorf("impersonate: restoring android TLS: %w", err))
	}
	if err := s.m.propagateRetry(s.runner, s.runner.TID(), kernel.PersonaIOS, withDeletions(iKeys, s.savedIOS)); err != nil {
		restoreErr = errors.Join(restoreErr, err)
		errs = append(errs, fmt.Errorf("impersonate: restoring ios TLS: %w", err))
	}
	s.runner.TraceEnd(sp)
	s.runner.TraceEnd(s.span)
	s.runner.Histograms().Histogram(SessionHistName).Observe(s.runner.TID(), s.runner.VTime()-s.start)
	s.runner.FlightRecord(obs.FlightMark, obs.CatImpersonation, "impersonate_end", int64(s.target.TID()))
	if restoreErr != nil {
		// A failed restore is the End-side rollback firing and losing: the
		// runner keeps the target's TLS. Preserve the black box.
		dumpRollback(s.runner, restoreErr)
	}
	return errors.Join(errs...)
}

// withDeletions builds a propagate_tls payload that sets the provided values
// and deletes every tracked key absent from them (nil value = delete).
func withDeletions(keys []int, vals map[int]any) map[int]any {
	out := make(map[int]any, len(keys))
	for _, k := range keys {
		if v, ok := vals[k]; ok {
			out[k] = v
		} else {
			out[k] = nil
		}
	}
	return out
}
