// Package impersonate implements thread impersonation — the paper's second
// contribution (§7.1). A running thread temporarily assumes the identity of
// a target thread (the one that created an Android GLES context), migrating
// the graphics-related TLS slots of both personas between them so that
// Android's creator-only GLES libraries accept the call and see the right
// state.
//
// Graphics-related TLS slots are discovered exactly as in the paper: the
// libc pthread_key_create/pthread_key_delete hooks (the 12-line Bionic
// patch) are gated so they only record keys created while a graphics
// diplomat's prelude has opened the gate — i.e. keys reserved by the
// graphics libraries themselves. Well-known iOS graphics slots are
// registered explicitly, since Apple's libraries are opaque.
package impersonate

import (
	"fmt"
	"sort"
	"sync"

	"cycada/internal/android/libc"
	"cycada/internal/sim/kernel"
)

// Manager tracks graphics TLS slots and performs impersonation sessions.
type Manager struct {
	bionic    *libc.Lib
	libSystem *libc.Lib

	mu          sync.Mutex
	gateDepth   int
	androidKeys map[int]bool
	iosKeys     map[int]bool
	unhook      func()
}

// New creates a manager over the two libcs and installs the gated Bionic
// key hook.
func New(bionic, libSystem *libc.Lib) *Manager {
	m := &Manager{
		bionic:      bionic,
		libSystem:   libSystem,
		androidKeys: map[int]bool{},
		iosKeys:     map[int]bool{},
	}
	m.unhook = bionic.RegisterKeyHook(func(key int, name string, created bool) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if created {
			// "By … gating the Android pthread_key_create and
			// pthread_key_delete hooks in the prelude and postlude of each
			// graphics diplomat", only graphics keys are recorded.
			if m.gateDepth > 0 {
				m.androidKeys[key] = true
			}
			return
		}
		delete(m.androidKeys, key)
	})
	return m
}

// Close removes the Bionic hook.
func (m *Manager) Close() {
	if m.unhook != nil {
		m.unhook()
		m.unhook = nil
	}
}

// GateEnter opens the graphics gate: keys created until GateExit are
// considered graphics-related. Diplomats' GL preludes call this.
func (m *Manager) GateEnter() {
	m.mu.Lock()
	m.gateDepth++
	m.mu.Unlock()
}

// GateExit closes the gate (GL postlude).
func (m *Manager) GateExit() {
	m.mu.Lock()
	if m.gateDepth > 0 {
		m.gateDepth--
	}
	m.mu.Unlock()
}

// Gated runs fn with the gate open — the "load graphics libraries under the
// gate" pattern.
func (m *Manager) Gated(fn func()) {
	m.GateEnter()
	defer m.GateExit()
	fn()
}

// RegisterAndroidGraphicsKey records an Android graphics slot allocated
// before the manager existed (the globally-loaded vendor library's
// current-context key).
func (m *Manager) RegisterAndroidGraphicsKey(key int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.androidKeys[key] = true
}

// RegisterIOSGraphicsKey records a well-known Apple graphics TLS slot
// ("we also migrate well-known iOS TLS slots used by Apple graphics
// libraries", §7.1).
func (m *Manager) RegisterIOSGraphicsKey(key int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.iosKeys[key] = true
}

// AndroidGraphicsKeys returns the discovered Android graphics slots, sorted.
func (m *Manager) AndroidGraphicsKeys() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.androidKeys)
}

// IOSGraphicsKeys returns the registered iOS graphics slots, sorted.
func (m *Manager) IOSGraphicsKeys() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.iosKeys)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Session is one active impersonation: the running thread holds the target
// thread's graphics TLS (both personas) and identity until End.
type Session struct {
	m            *Manager
	runner       *kernel.Thread
	target       *kernel.Thread
	savedAndroid map[int]any
	savedIOS     map[int]any
	ended        bool
}

// Impersonate starts an impersonation of target by runner, performing steps
// (3) of §7.1: save the runner's graphics TLS in both personas and replace
// it with the target's, using the locate_tls/propagate_tls syscalls. It also
// assumes the target's kernel-visible identity so creator-only checks pass.
func (m *Manager) Impersonate(runner, target *kernel.Thread) (*Session, error) {
	if runner == target {
		return nil, fmt.Errorf("impersonate: thread cannot impersonate itself")
	}
	aKeys := m.AndroidGraphicsKeys()
	iKeys := m.IOSGraphicsKeys()

	savedA, err := runner.LocateTLS(runner.TID(), kernel.PersonaAndroid, aKeys)
	if err != nil {
		return nil, fmt.Errorf("impersonate: saving android TLS: %w", err)
	}
	savedI, err := runner.LocateTLS(runner.TID(), kernel.PersonaIOS, iKeys)
	if err != nil {
		return nil, fmt.Errorf("impersonate: saving ios TLS: %w", err)
	}

	targetA, err := runner.LocateTLS(target.TID(), kernel.PersonaAndroid, aKeys)
	if err != nil {
		return nil, fmt.Errorf("impersonate: reading target android TLS: %w", err)
	}
	targetI, err := runner.LocateTLS(target.TID(), kernel.PersonaIOS, iKeys)
	if err != nil {
		return nil, fmt.Errorf("impersonate: reading target ios TLS: %w", err)
	}

	if err := runner.PropagateTLS(runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, targetA)); err != nil {
		return nil, err
	}
	if err := runner.PropagateTLS(runner.TID(), kernel.PersonaIOS, withDeletions(iKeys, targetI)); err != nil {
		return nil, err
	}
	if err := runner.BeginImpersonation(target); err != nil {
		return nil, err
	}
	return &Session{
		m: m, runner: runner, target: target,
		savedAndroid: savedA, savedIOS: savedI,
	}, nil
}

// End finishes the session, performing steps (4) and (5) of §7.1: updates
// the running thread made to the graphics TLS are reflected back into the
// target thread ("the TLS associated with the GLES context"), and the
// runner's original graphics TLS is restored.
func (s *Session) End() error {
	if s.ended {
		return fmt.Errorf("impersonate: session already ended")
	}
	s.ended = true
	s.runner.EndImpersonation()

	aKeys := s.m.AndroidGraphicsKeys()
	iKeys := s.m.IOSGraphicsKeys()

	// Step 4: reflect updates back to the target.
	curA, err := s.runner.LocateTLS(s.runner.TID(), kernel.PersonaAndroid, aKeys)
	if err != nil {
		return err
	}
	curI, err := s.runner.LocateTLS(s.runner.TID(), kernel.PersonaIOS, iKeys)
	if err != nil {
		return err
	}
	if err := s.runner.PropagateTLS(s.target.TID(), kernel.PersonaAndroid, withDeletions(aKeys, curA)); err != nil {
		return err
	}
	if err := s.runner.PropagateTLS(s.target.TID(), kernel.PersonaIOS, withDeletions(iKeys, curI)); err != nil {
		return err
	}

	// Step 5: restore the runner's own graphics TLS.
	if err := s.runner.PropagateTLS(s.runner.TID(), kernel.PersonaAndroid, withDeletions(aKeys, s.savedAndroid)); err != nil {
		return err
	}
	return s.runner.PropagateTLS(s.runner.TID(), kernel.PersonaIOS, withDeletions(iKeys, s.savedIOS))
}

// withDeletions builds a propagate_tls payload that sets the provided values
// and deletes every tracked key absent from them (nil value = delete).
func withDeletions(keys []int, vals map[int]any) map[int]any {
	out := make(map[int]any, len(keys))
	for _, k := range keys {
		if v, ok := vals[k]; ok {
			out[k] = v
		} else {
			out[k] = nil
		}
	}
	return out
}
