package libc

import (
	"testing"

	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func newThread(t *testing.T) *kernel.Thread {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	p, err := k.NewProcess("p", kernel.PersonaAndroid, kernel.PersonaIOS)
	if err != nil {
		t.Fatal(err)
	}
	return p.Main()
}

func TestCreateKeyReturnsUniqueIDs(t *testing.T) {
	l := New(kernel.PersonaAndroid)
	a := l.CreateKey("a")
	b := l.CreateKey("b")
	if a == b {
		t.Fatal("duplicate key IDs")
	}
	if a <= kernel.ErrnoSlot {
		t.Fatal("key collides with reserved system slots")
	}
	if name, ok := l.KeyName(a); !ok || name != "a" {
		t.Fatalf("KeyName = %q, %v", name, ok)
	}
	if got := l.Keys(); len(got) != 2 {
		t.Fatalf("Keys() = %v", got)
	}
}

func TestGetSetSpecific(t *testing.T) {
	th := newThread(t)
	l := New(kernel.PersonaAndroid)
	key := l.CreateKey("ctx")
	if err := l.SetSpecific(th, key, "value"); err != nil {
		t.Fatal(err)
	}
	if got := l.GetSpecific(th, key); got != "value" {
		t.Fatalf("GetSpecific = %v", got)
	}
	// The value lives in the Android persona only.
	if v, ok := th.TLSGet(kernel.PersonaIOS, key); ok {
		t.Fatalf("value leaked into the iOS persona: %v", v)
	}
	l.DeleteKey(key)
	if err := l.SetSpecific(th, key, "x"); err == nil {
		t.Fatal("setspecific on deleted key succeeded")
	}
}

func TestKeyHooksTheBionicPatch(t *testing.T) {
	l := New(kernel.PersonaAndroid)
	var events []string
	unreg := l.RegisterKeyHook(func(key int, name string, created bool) {
		if created {
			events = append(events, "create:"+name)
		} else {
			events = append(events, "delete:"+name)
		}
	})
	k1 := l.CreateKey("gles-ctx")
	l.DeleteKey(k1)
	if len(events) != 2 || events[0] != "create:gles-ctx" || events[1] != "delete:gles-ctx" {
		t.Fatalf("events = %v", events)
	}
	// Deleting a dead key fires nothing.
	l.DeleteKey(k1)
	if len(events) != 2 {
		t.Fatalf("dead-key delete fired a hook: %v", events)
	}
	unreg()
	l.CreateKey("after")
	if len(events) != 2 {
		t.Fatal("hook fired after unregister")
	}
}

func TestMultipleHooksFireInOrder(t *testing.T) {
	l := New(kernel.PersonaIOS)
	var order []int
	l.RegisterKeyHook(func(int, string, bool) { order = append(order, 1) })
	l.RegisterKeyHook(func(int, string, bool) { order = append(order, 2) })
	l.CreateKey("k")
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSymbolsSurface(t *testing.T) {
	th := newThread(t)
	l := New(kernel.PersonaAndroid)
	syms := l.Symbols()
	key := syms["pthread_key_create"](th, "webkit").(int)
	if key == 0 {
		t.Fatal("pthread_key_create returned 0")
	}
	if rc := syms["pthread_setspecific"](th, key, 42); rc != 0 {
		t.Fatalf("setspecific rc = %v", rc)
	}
	if got := syms["pthread_getspecific"](th, key); got != 42 {
		t.Fatalf("getspecific = %v", got)
	}
	if rc := syms["pthread_key_delete"](th, key); rc != 0 {
		t.Fatalf("key_delete rc = %v", rc)
	}
	if rc := syms["pthread_setspecific"](th, key, 1); rc != 1 {
		t.Fatal("setspecific on dead key should fail")
	}
}

func TestLibNames(t *testing.T) {
	if LibName(kernel.PersonaAndroid) != "libc.so" {
		t.Fatal("android libc name wrong")
	}
	if LibName(kernel.PersonaIOS) != "libSystem.dylib" {
		t.Fatal("iOS libc name wrong")
	}
	l := New(kernel.PersonaIOS)
	bp := l.Blueprint()
	if bp.Name != "libSystem.dylib" || !bp.Shared {
		t.Fatalf("blueprint = %+v, want shared libSystem", bp)
	}
}

func TestPersonaAccessor(t *testing.T) {
	if New(kernel.PersonaIOS).Persona() != kernel.PersonaIOS {
		t.Fatal("persona accessor wrong")
	}
}
