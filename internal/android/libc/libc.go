// Package libc simulates a platform C library's pthread TLS-key surface:
// pthread_key_create / pthread_key_delete / pthread_getspecific /
// pthread_setspecific over the kernel's per-persona TLS areas.
//
// It includes the paper's "trivial 12 line patch" to Android's libc (§7.1):
// a notification hook fired on every key create and delete, which Cycada's
// thread-impersonation machinery gates in the prelude/postlude of each
// graphics diplomat to discover which TLS slots are graphics-related.
//
// One Lib instance manages one persona's key space in one process: Bionic
// for the Android persona, libSystem for the iOS persona. The library is
// never replicated by DLR (paper footnote 1).
package libc

import (
	"fmt"
	"sort"
	"sync"

	"cycada/internal/linker"
	"cycada/internal/sim/kernel"
)

// KeyHook observes TLS key lifecycle events — the Bionic patch.
type KeyHook func(key int, name string, created bool)

// Lib is one libc instance.
type Lib struct {
	persona kernel.Persona

	mu       sync.Mutex
	nextKey  int
	keys     map[int]string
	hooks    map[int]KeyHook
	nextHook int
}

// New creates a libc managing TLS keys for the given persona. Key IDs start
// above the reserved system slots (errno is slot 0).
func New(persona kernel.Persona) *Lib {
	return &Lib{persona: persona, nextKey: 8, keys: map[int]string{}, hooks: map[int]KeyHook{}}
}

// Persona returns the persona whose TLS this libc manages.
func (l *Lib) Persona() kernel.Persona { return l.persona }

// CreateKey implements pthread_key_create: it returns a globally-unique TLS
// slot ID and notifies registered hooks.
func (l *Lib) CreateKey(name string) int {
	l.mu.Lock()
	l.nextKey++
	key := l.nextKey
	l.keys[key] = name
	hooks := l.snapshotHooksLocked()
	l.mu.Unlock()
	for _, h := range hooks {
		h(key, name, true)
	}
	return key
}

// DeleteKey implements pthread_key_delete.
func (l *Lib) DeleteKey(key int) {
	l.mu.Lock()
	name, ok := l.keys[key]
	if ok {
		delete(l.keys, key)
	}
	hooks := l.snapshotHooksLocked()
	l.mu.Unlock()
	if !ok {
		return
	}
	for _, h := range hooks {
		h(key, name, false)
	}
}

func (l *Lib) snapshotHooksLocked() []KeyHook {
	out := make([]KeyHook, 0, len(l.hooks))
	ids := make([]int, 0, len(l.hooks))
	for id := range l.hooks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, l.hooks[id])
	}
	return out
}

// RegisterKeyHook installs a hook and returns its unregister function. The
// impersonation layer registers a hook only while graphics libraries load
// (gated in diplomat preludes), so only graphics keys are tracked.
func (l *Lib) RegisterKeyHook(h KeyHook) (unregister func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextHook++
	id := l.nextHook
	l.hooks[id] = h
	return func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		delete(l.hooks, id)
	}
}

// KeyName returns the debug name of a live key.
func (l *Lib) KeyName(key int) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.keys[key]
	return n, ok
}

// Keys returns the live key IDs in sorted order.
func (l *Lib) Keys() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.keys))
	for k := range l.keys {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// GetSpecific implements pthread_getspecific in this libc's persona.
func (l *Lib) GetSpecific(t *kernel.Thread, key int) any {
	v, _ := t.TLSGet(l.persona, key)
	return v
}

// SetSpecific implements pthread_setspecific in this libc's persona.
func (l *Lib) SetSpecific(t *kernel.Thread, key int, v any) error {
	l.mu.Lock()
	_, ok := l.keys[key]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("libc: pthread_setspecific on dead key %d", key)
	}
	return t.TLSSet(l.persona, key, v)
}

// Symbols exports the pthread surface for the dynamic linker.
func (l *Lib) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		"pthread_key_create": func(t *kernel.Thread, args ...any) any {
			name, _ := args[0].(string)
			return l.CreateKey(name)
		},
		"pthread_key_delete": func(t *kernel.Thread, args ...any) any {
			l.DeleteKey(args[0].(int))
			return 0
		},
		"pthread_getspecific": func(t *kernel.Thread, args ...any) any {
			return l.GetSpecific(t, args[0].(int))
		},
		"pthread_setspecific": func(t *kernel.Thread, args ...any) any {
			if err := l.SetSpecific(t, args[0].(int), args[1]); err != nil {
				return 1
			}
			return 0
		},
	}
}

// LibName returns the conventional library name for a persona's libc.
func LibName(p kernel.Persona) string {
	if p == kernel.PersonaIOS {
		return "libSystem.dylib"
	}
	return "libc.so"
}

// Blueprint returns the linker blueprint for this libc. It is marked Shared:
// DLR never replicates libc.
func (l *Lib) Blueprint() *linker.Blueprint {
	return &linker.Blueprint{
		Name:   LibName(l.persona),
		Shared: true,
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			return l, nil
		},
	}
}
