// Package sflinger simulates Android's SurfaceFlinger: the system compositor
// that receives posted GraphicBuffers over Binder, composites them through
// the HWComposer path, and scans them out through the Linux framebuffer
// device (paper §2, Figure 2).
package sflinger

import (
	"fmt"
	"sync"

	"cycada/internal/android/gralloc"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
)

// ComposeHistName names the per-buffer composition latency distribution
// (frame-health telemetry) in the owning kernel's histogram registry.
const ComposeHistName = "sf-compose"

// ServiceName is the Binder name SurfaceFlinger registers under.
const ServiceName = "SurfaceFlinger"

// FramebufferPath is the scan-out device node.
const FramebufferPath = "/dev/graphics/fb0"

// Binder transaction codes.
const (
	TxnCreateLayer uint32 = iota + 1
	TxnPostBuffer
	TxnDestroyLayer
)

// PostRequest is the TxnPostBuffer payload.
type PostRequest struct {
	Layer  int
	Buffer *gralloc.Buffer
}

// Flinger is the compositor service.
type Flinger struct {
	mu        sync.Mutex
	screen    *gpu.Image
	layers    map[int]*layer
	nextLayer int
	frames    int
}

type layer struct {
	id   int
	x, y int
	last *gralloc.Buffer
}

// New creates a SurfaceFlinger with a screen of the given size. Register it
// with kernel.RegisterBinderService(ServiceName, f) and its framebuffer with
// kernel.RegisterDevice(FramebufferPath, f.Framebuffer()).
func New(w, h int) *Flinger {
	return &Flinger{screen: gpu.NewImage(w, h), layers: map[int]*layer{}}
}

// Screen returns a snapshot copy of the scan-out image (tests and screenshot
// tooling). A copy, not the live image: composition keeps mutating the screen
// under f.mu, so handing out the live pointer would let callers race with
// post().
func (f *Flinger) Screen() *gpu.Image {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.screen.Clone()
}

// ScreenChecksum hashes the scan-out image under the compositor lock without
// copying it — the cheap per-present probe record/replay verification uses.
func (f *Flinger) ScreenChecksum() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.screen.Checksum()
}

// Size reports the framebuffer mode.
func (f *Flinger) Size() (w, h int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.screen.W, f.screen.H
}

// Frames reports how many buffers have been composited.
func (f *Flinger) Frames() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// Reset returns the compositor to its boot state: the scan-out image is
// cleared to black and every layer is dropped (their owners are gone — the
// device farm calls this between sessions, after the previous session's
// process is torn down, so the next session's presents compose onto exactly
// the screen a freshly booted stack would show). The cumulative frame
// counter is preserved.
func (f *Flinger) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.screen.Pix {
		f.screen.Pix[i] = 0
	}
	f.layers = map[int]*layer{}
}

// Transact implements kernel.BinderService.
func (f *Flinger) Transact(t *kernel.Thread, code uint32, data any) (any, error) {
	switch code {
	case TxnCreateLayer:
		pos, _ := data.([2]int)
		f.mu.Lock()
		defer f.mu.Unlock()
		f.nextLayer++
		f.layers[f.nextLayer] = &layer{id: f.nextLayer, x: pos[0], y: pos[1]}
		return f.nextLayer, nil
	case TxnPostBuffer:
		req, ok := data.(PostRequest)
		if !ok {
			return nil, fmt.Errorf("sflinger: bad post payload %T", data)
		}
		return nil, f.post(t, req)
	case TxnDestroyLayer:
		id, ok := data.(int)
		if !ok {
			return nil, fmt.Errorf("sflinger: bad destroy payload %T", data)
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		delete(f.layers, id)
		return nil, nil
	default:
		return nil, fmt.Errorf("sflinger: unknown transaction %d", code)
	}
}

// post composites a buffer onto the screen through the HWComposer path.
func (f *Flinger) post(t *kernel.Thread, req PostRequest) error {
	if req.Buffer == nil || req.Buffer.Img == nil {
		return fmt.Errorf("sflinger: post of nil buffer")
	}
	start := t.VTime()
	defer func() { t.Histograms().Histogram(ComposeHistName).Observe(t.TID(), t.VTime()-start) }()
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.layers[req.Layer]
	if !ok {
		return fmt.Errorf("sflinger: post to unknown layer %d", req.Layer)
	}
	// Composition runs on the HW Composer; the per-pixel scan-out cost was
	// already charged by eglSwapBuffers, so posting only pays the Binder
	// transaction (charged by the kernel) plus a fixed setup cost. The
	// layer's tiles are composed concurrently on the kernel's raster pool;
	// bands write disjoint screen rows, so the scan-out image is identical
	// for any worker count, and f.mu still serializes whole compositions
	// against each other and against Screen()/ScreenChecksum snapshots.
	f.screen.CopyParallel(req.Buffer.Img, l.x, l.y, t.Kernel().RasterPool())
	l.last = req.Buffer
	f.frames++
	t.ChargeGPU(t.Costs().FlushBase / 4)
	return nil
}

// Framebuffer returns the scan-out ioctl device (a stub that reports mode
// information; actual pixels flow through Binder posts, as on real Android).
func (f *Flinger) Framebuffer() kernel.Device { return &fbDevice{f: f} }

type fbDevice struct{ f *Flinger }

// Ioctl implements the FBIOGET_VSCREENINFO-style mode query.
func (d *fbDevice) Ioctl(t *kernel.Thread, cmd uint32, arg any) (any, error) {
	switch cmd {
	case 0x4600: // FBIOGET_VSCREENINFO
		w, h := d.f.Size()
		return [2]int{w, h}, nil
	default:
		return nil, fmt.Errorf("fb0: unknown ioctl %#x", cmd)
	}
}

// Client is the userspace side used by EGL window surfaces.
type Client struct{}

// CreateLayer allocates a compositor layer at a screen position.
func (Client) CreateLayer(t *kernel.Thread, x, y int) (int, error) {
	r, err := t.BinderCall(ServiceName, TxnCreateLayer, [2]int{x, y})
	if err != nil {
		return 0, err
	}
	return r.(int), nil
}

// Post sends a buffer to the compositor.
func (Client) Post(t *kernel.Thread, layerID int, buf *gralloc.Buffer) error {
	_, err := t.BinderCall(ServiceName, TxnPostBuffer, PostRequest{Layer: layerID, Buffer: buf})
	return err
}

// DestroyLayer releases a compositor layer.
func (Client) DestroyLayer(t *kernel.Thread, layerID int) error {
	_, err := t.BinderCall(ServiceName, TxnDestroyLayer, layerID)
	return err
}
