// Tests for the SurfaceFlinger simulation: the Binder layer lifecycle, frame
// accounting, the framebuffer mode ioctl, and the snapshot semantics of
// Screen() — including a compose-vs-screenshot race exercised under -race.
// External test package because stack (used to boot the system) imports
// sflinger.
package sflinger_test

import (
	"strings"
	"sync"
	"testing"

	"cycada/internal/android/gralloc"
	"cycada/internal/android/sflinger"
	"cycada/internal/android/stack"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
)

func boot(t *testing.T) (*stack.System, *kernel.Thread) {
	t.Helper()
	sys := stack.New(stack.Config{})
	proc, err := sys.Kernel.NewProcess("sflinger-test", kernel.PersonaAndroid)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	return sys, proc.Main()
}

func allocBuffer(t *testing.T, th *kernel.Thread, w, h int, c gpu.RGBA) *gralloc.Buffer {
	t.Helper()
	buf, err := (&gralloc.Lib{}).Alloc(th, w, h, gpu.FormatRGBA8888)
	if err != nil {
		t.Fatalf("gralloc alloc: %v", err)
	}
	buf.Img.Fill(c)
	return buf
}

func TestLayerLifecycleOverBinder(t *testing.T) {
	sys, th := boot(t)
	var client sflinger.Client

	layer, err := client.CreateLayer(th, 10, 20)
	if err != nil {
		t.Fatalf("CreateLayer: %v", err)
	}
	red := gpu.RGBA{R: 200, G: 10, B: 10, A: 255}
	buf := allocBuffer(t, th, 64, 48, red)
	if err := client.Post(th, layer, buf); err != nil {
		t.Fatalf("Post: %v", err)
	}
	screen := sys.Flinger.Screen()
	if got := screen.At(10, 20); got != red {
		t.Fatalf("screen at layer origin = %v, want %v", got, red)
	}
	if got := screen.At(10+64, 20); got == red {
		t.Fatalf("screen right of layer = %v, want untouched", got)
	}

	if err := client.DestroyLayer(th, layer); err != nil {
		t.Fatalf("DestroyLayer: %v", err)
	}
	err = client.Post(th, layer, buf)
	if err == nil || !strings.Contains(err.Error(), "unknown layer") {
		t.Fatalf("Post after destroy: err = %v, want unknown layer", err)
	}
}

func TestFramesAccounting(t *testing.T) {
	sys, th := boot(t)
	var client sflinger.Client

	layer, err := client.CreateLayer(th, 0, 0)
	if err != nil {
		t.Fatalf("CreateLayer: %v", err)
	}
	buf := allocBuffer(t, th, 8, 8, gpu.RGBA{R: 1, G: 2, B: 3, A: 255})
	const n = 5
	for i := 0; i < n; i++ {
		if err := client.Post(th, layer, buf); err != nil {
			t.Fatalf("Post %d: %v", i, err)
		}
	}
	if got := sys.Flinger.Frames(); got != n {
		t.Fatalf("Frames = %d, want %d", got, n)
	}
	if err := client.Post(th, layer, nil); err == nil {
		t.Fatalf("Post(nil buffer): err = nil, want error")
	}
	if got := sys.Flinger.Frames(); got != n {
		t.Fatalf("Frames after failed post = %d, want %d", got, n)
	}
}

func TestBadTransactions(t *testing.T) {
	_, th := boot(t)
	if _, err := th.BinderCall(sflinger.ServiceName, 0xdead, nil); err == nil {
		t.Errorf("unknown transaction: err = nil, want error")
	}
	if _, err := th.BinderCall(sflinger.ServiceName, sflinger.TxnPostBuffer, "bogus"); err == nil {
		t.Errorf("bad post payload: err = nil, want error")
	}
	if _, err := th.BinderCall(sflinger.ServiceName, sflinger.TxnDestroyLayer, "bogus"); err == nil {
		t.Errorf("bad destroy payload: err = nil, want error")
	}
}

func TestFramebufferIoctl(t *testing.T) {
	_, th := boot(t)
	mode, err := th.Ioctl(sflinger.FramebufferPath, 0x4600, nil)
	if err != nil {
		t.Fatalf("FBIOGET_VSCREENINFO: %v", err)
	}
	if got := mode.([2]int); got != [2]int{stack.ScreenW, stack.ScreenH} {
		t.Fatalf("mode = %v, want [%d %d]", got, stack.ScreenW, stack.ScreenH)
	}
	if _, err := th.Ioctl(sflinger.FramebufferPath, 0x9999, nil); err == nil {
		t.Fatalf("unknown ioctl: err = nil, want error")
	}
}

// Screen must hand out a snapshot: mutating the returned image must not
// reach the compositor's scan-out image.
func TestScreenIsSnapshot(t *testing.T) {
	sys, th := boot(t)
	var client sflinger.Client

	layer, err := client.CreateLayer(th, 0, 0)
	if err != nil {
		t.Fatalf("CreateLayer: %v", err)
	}
	buf := allocBuffer(t, th, stack.ScreenW, stack.ScreenH, gpu.RGBA{R: 9, G: 99, B: 199, A: 255})
	if err := client.Post(th, layer, buf); err != nil {
		t.Fatalf("Post: %v", err)
	}
	before := sys.Flinger.ScreenChecksum()
	snap := sys.Flinger.Screen()
	snap.Fill(gpu.RGBA{R: 255, A: 255})
	if got := sys.Flinger.ScreenChecksum(); got != before {
		t.Fatalf("compositor image changed after mutating snapshot: %08x -> %08x", before, got)
	}
}

// Concurrent posts against Screen/ScreenChecksum readers; meaningful under
// -race, where the old live-pointer Screen() would trip the detector.
func TestComposeVsScreenshotRace(t *testing.T) {
	sys, th := boot(t)
	var client sflinger.Client

	layer, err := client.CreateLayer(th, 0, 0)
	if err != nil {
		t.Fatalf("CreateLayer: %v", err)
	}
	proc := th.Process()
	const writers, readers, rounds = 2, 2, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := proc.NewThread("writer")
			buf := allocBuffer(t, wth, 32, 32, gpu.RGBA{R: uint8(50 * w), G: 128, A: 255})
			for i := 0; i < rounds; i++ {
				buf.Img.Set(i%32, i%32, gpu.RGBA{R: uint8(i), A: 255})
				if err := client.Post(wth, layer, buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				img := sys.Flinger.Screen()
				_ = img.Checksum()
				_ = sys.Flinger.ScreenChecksum()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent post: %v", err)
	}
	if got := sys.Flinger.Frames(); got != writers*rounds {
		t.Fatalf("Frames = %d, want %d", got, writers*rounds)
	}
}

// Parallel tile compose: posts large multi-band buffers through a multi-
// worker raster pool while screenshot readers run — the compose fan-out must
// stay inside the compositor lock (no torn frames, no races under -race) —
// and the composed screen must be byte-identical to a serial compose.
func TestParallelComposeDeterministicVsSerial(t *testing.T) {
	compose := func(workers int) uint32 {
		sys := stack.New(stack.Config{RasterWorkers: workers})
		proc, err := sys.Kernel.NewProcess("compose-test", kernel.PersonaAndroid)
		if err != nil {
			t.Fatalf("NewProcess: %v", err)
		}
		th := proc.Main()
		var client sflinger.Client
		for i := 0; i < 3; i++ {
			layer, err := client.CreateLayer(th, i*40-20, i*30-10)
			if err != nil {
				t.Fatalf("CreateLayer: %v", err)
			}
			// Taller than one band and partially off-screen, so the banded
			// copy exercises both the fan-out and the clipping.
			buf := allocBuffer(t, th, 200, gpu.TileSize*2+17, gpu.RGBA{R: uint8(90 * i), G: 200, B: uint8(50 + i), A: 255})
			for p := 0; p < len(buf.Img.Pix); p += 9 {
				buf.Img.Pix[p] = byte(p >> 3)
			}
			if err := client.Post(th, layer, buf); err != nil {
				t.Fatalf("Post: %v", err)
			}
		}
		return sys.Flinger.ScreenChecksum()
	}
	serial := compose(1)
	for _, workers := range []int{2, 4, 8} {
		if got := compose(workers); got != serial {
			t.Fatalf("workers=%d compose checksum %08x, want serial %08x", workers, got, serial)
		}
	}
}

// Concurrent multi-layer posts of band-sized buffers against screenshot
// readers, with a parallel pool — the -race companion to the determinism
// test above.
func TestParallelComposeVsScreenshotRace(t *testing.T) {
	sys := stack.New(stack.Config{RasterWorkers: 4})
	proc, err := sys.Kernel.NewProcess("compose-race", kernel.PersonaAndroid)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	var client sflinger.Client
	const writers, rounds = 3, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := proc.NewThread("compose-writer")
			layer, err := client.CreateLayer(wth, w*16, w*8)
			if err != nil {
				errs <- err
				return
			}
			buf := allocBuffer(t, wth, 160, gpu.TileSize+40, gpu.RGBA{R: uint8(80 * w), B: 128, A: 255})
			for i := 0; i < rounds; i++ {
				if err := client.Post(wth, layer, buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writers*rounds; i++ {
			_ = sys.Flinger.Screen().Checksum()
			_ = sys.Flinger.ScreenChecksum()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent parallel compose: %v", err)
	}
	if got := sys.Flinger.Frames(); got != writers*rounds {
		t.Fatalf("Frames = %d, want %d", got, writers*rounds)
	}
}
