// Package gles provides the Android vendor GLES library of the simulation:
// the NVIDIA-Tegra-flavoured libGLESv2_tegra.so from the paper's Nexus 7
// testbed, with the Android extension set of Table 1, the creator-only
// threading policy of §7, and the libnvrm/libnvos dependency chain §8.1 uses
// as its DLR example.
package gles

import (
	"cycada/internal/android/libc"
	"cycada/internal/core/callconv"
	"cycada/internal/gles/engine"
	"cycada/internal/gles/registry"
	"cycada/internal/gles/symbols"
	"cycada/internal/linker"
	"cycada/internal/sim/kernel"
)

// Library names from the paper.
const (
	LibName  = "libGLESv2_tegra.so"
	NVRMName = "libnvrm.so"
	NVOSName = "libnvos.so"
)

// TegraProfile returns the vendor profile of the Nexus 7's GLES library.
func TegraProfile() engine.Profile {
	exts := registry.AndroidExtensions()
	extFuncs := make(map[string]bool)
	for _, f := range registry.ExtFuncs(exts) {
		extFuncs[f] = true
	}
	return engine.Profile{
		Vendor:     "NVIDIA Corporation",
		Renderer:   "NVIDIA Tegra 3",
		Versions:   []int{1, 2},
		Extensions: registry.ExtensionNames(exts),
		ExtFuncs:   extFuncs,
		Policy:     engine.PolicyCreatorOnly,
		Persona:    kernel.PersonaAndroid,
	}
}

// VendorLib is one loaded instance of the vendor library.
type VendorLib struct {
	eng    *engine.Lib
	syms   map[string]linker.Fn
	frames map[string]callconv.FrameFn
}

// Engine exposes the typed GLES engine behind the symbol surface; the EGL
// vendor library and libui_wrapper use it directly (they link against the
// vendor library rather than dlsym-ing every call).
func (v *VendorLib) Engine() *engine.Lib { return v.eng }

// Symbols implements linker.Instance.
func (v *VendorLib) Symbols() map[string]linker.Fn { return v.syms }

// FrameSymbols implements linker.FrameInstance: the typed fast path into the
// same surface.
func (v *VendorLib) FrameSymbols() map[string]callconv.FrameFn { return v.frames }

// Finalize implements linker.Finalizer: replica teardown releases the
// library's TLS key.
func (v *VendorLib) Finalize() { v.eng.Finalize() }

// Blueprint returns the vendor GLES library blueprint. Its dependency chain
// (libnvrm.so -> libnvos.so) matches the paper's DLR example: each replica
// of libGLESv2_tegra.so links against privately loaded copies of both.
func Blueprint() *linker.Blueprint {
	return &linker.Blueprint{
		Name: LibName,
		Deps: []string{NVRMName, "libc.so"},
		Size: 2 << 20,
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			bionic := ctx.Dep("libc.so").(*libc.Lib)
			eng := engine.NewLib(TegraProfile(), bionic)
			// The exported surface is the Android platform surface plus the
			// unadvertised entry points Cycada's direct diplomats rely on
			// (registry.TegraUnadvertised; real vendor libraries ship many
			// symbols beyond their advertised extensions).
			surface := append(registry.AndroidSurface(), registry.TegraUnadvertised()...)
			return &VendorLib{
				eng:    eng,
				syms:   symbols.Build(eng, surface, "NV"),
				frames: symbols.BuildFrames(eng, surface, "NV"),
			}, nil
		},
	}
}

// nvLib is a proprietary NVIDIA support library: private per-replica state
// that the DLR tests observe.
type nvLib struct {
	name  string
	state map[string]any
}

func (n *nvLib) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		n.name + "_set": func(t *kernel.Thread, args ...any) any {
			n.state[args[0].(string)] = args[1]
			return 0
		},
		n.name + "_get": func(t *kernel.Thread, args ...any) any {
			return n.state[args[0].(string)]
		},
	}
}

// SupportBlueprints returns the libnvrm.so and libnvos.so blueprints.
func SupportBlueprints() []*linker.Blueprint {
	return []*linker.Blueprint{
		{
			Name: NVRMName,
			Deps: []string{NVOSName},
			New: func(ctx *linker.LoadContext) (linker.Instance, error) {
				return &nvLib{name: "nvrm", state: map[string]any{}}, nil
			},
		},
		{
			Name: NVOSName,
			Deps: []string{"libc.so"},
			New: func(ctx *linker.LoadContext) (linker.Instance, error) {
				return &nvLib{name: "nvos", state: map[string]any{}}, nil
			},
		},
	}
}
