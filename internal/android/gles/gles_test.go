package gles

import (
	"strings"
	"testing"

	"cycada/internal/android/libc"
	"cycada/internal/gles/registry"
	"cycada/internal/linker"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func load(t *testing.T) (*kernel.Thread, *VendorLib, *linker.Linker) {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7()})
	p, err := k.NewProcess("app", kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	l := linker.New(p)
	l.MustRegister(libc.New(kernel.PersonaAndroid).Blueprint())
	for _, bp := range SupportBlueprints() {
		l.MustRegister(bp)
	}
	l.MustRegister(Blueprint())
	h, err := l.Dlopen(p.Main(), LibName)
	if err != nil {
		t.Fatal(err)
	}
	return p.Main(), h.Instance().(*VendorLib), l
}

func TestTegraProfile(t *testing.T) {
	prof := TegraProfile()
	if prof.Vendor != "NVIDIA Corporation" || !strings.Contains(prof.Renderer, "Tegra") {
		t.Fatalf("profile = %+v", prof)
	}
	if !prof.Supports(1) || !prof.Supports(2) || prof.Supports(3) {
		t.Fatal("version support wrong")
	}
	if !prof.HasExtension("GL_NV_fence") {
		t.Fatal("NV_fence missing")
	}
	if prof.HasExtension("GL_APPLE_fence") {
		t.Fatal("APPLE_fence advertised on Tegra")
	}
	if len(prof.Extensions) != 60 {
		t.Fatalf("extensions = %d, want 60 (Table 1)", len(prof.Extensions))
	}
}

func TestSymbolSurfaceCoversAndroidPlusUnadvertised(t *testing.T) {
	_, v, _ := load(t)
	syms := v.Symbols()
	for _, name := range registry.AndroidSurface() {
		if _, ok := syms[name]; !ok {
			t.Errorf("missing advertised symbol %s", name)
		}
	}
	for _, name := range registry.TegraUnadvertised() {
		if _, ok := syms[name]; !ok {
			t.Errorf("missing unadvertised symbol %s", name)
		}
	}
	// The Apple fence family must NOT be exported: that is what forces the
	// indirect diplomats.
	if _, ok := syms["glSetFenceAPPLE"]; ok {
		t.Error("Tegra exports glSetFenceAPPLE")
	}
}

func TestNVDependencyChainIsPrivatePerReplica(t *testing.T) {
	th, _, l := load(t)
	r1, err := l.Dlforce(th, LibName)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Dlforce(th, LibName)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate libnvrm state in replica 1; replica 2 must not see it (§8.1's
	// exact example).
	s1 := l.MustSym(r1, "nvrm_set")
	s1.Call(th, "mode", "fast")
	g2 := l.MustSym(r2, "nvrm_get")
	if got := g2.Call(th, "mode"); got != nil {
		t.Fatalf("replica 2 libnvrm saw %v", got)
	}
	g1 := l.MustSym(r1, "nvrm_get")
	if got := g1.Call(th, "mode"); got != "fast" {
		t.Fatalf("replica 1 libnvrm = %v", got)
	}
	if l.ConstructorRuns(NVOSName) != 3 {
		t.Fatalf("libnvos constructors = %d, want 3", l.ConstructorRuns(NVOSName))
	}
}

func TestStubSymbolsAreCallable(t *testing.T) {
	th, v, _ := load(t)
	// A stub entry point (never modelled) must be callable and counted.
	fn := v.Symbols()["glStencilMask"]
	if fn == nil {
		t.Fatal("glStencilMask missing")
	}
	fn(th, uint32(0xFF))
	if v.Engine().CallCount("glStencilMask") != 1 {
		t.Fatal("stub call not counted")
	}
}
