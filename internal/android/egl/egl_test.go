// Error-path tests for the EGL stack: the single-connection restriction of
// §8.1 on the stock library, and the EGL_multi_context extension's failure
// modes. External test package because stack (used to boot a userspace)
// imports egl.
package egl_test

import (
	"errors"
	"testing"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
)

func bootUserspace(t *testing.T, multiContext bool) *stack.Userspace {
	t.Helper()
	sys := stack.New(stack.Config{})
	us, err := sys.NewUserspace(stack.UserConfig{
		Name: "egl-test",
		EGL:  egl.Config{MultiContext: multiContext},
	})
	if err != nil {
		t.Fatalf("NewUserspace: %v", err)
	}
	return us
}

// On the stock library the first eglCreateContext locks the process's GLES
// API version; a second connection with a different version is rejected —
// the restriction that, without DLR, forces one GLES version per process.
func TestSecondConnectionVersionRejected(t *testing.T) {
	us := bootUserspace(t, false)
	main := us.Proc.Main()

	if _, err := us.EGL.CreateContext(main, 2, nil); err != nil {
		t.Fatalf("first CreateContext(v2): %v", err)
	}
	if got := us.EGL.Vendor().ConnectedVersion(); got != 2 {
		t.Fatalf("ConnectedVersion = %d, want 2", got)
	}
	_, err := us.EGL.CreateContext(main, 1, nil)
	if !errors.Is(err, egl.ErrVersionConflict) {
		t.Fatalf("CreateContext(v1) after v2: err = %v, want ErrVersionConflict", err)
	}
	// Same version re-connects fine: the restriction is per-version, not
	// per-context.
	if _, err := us.EGL.CreateContext(main, 2, nil); err != nil {
		t.Fatalf("second CreateContext(v2): %v", err)
	}
}

// Every EGL_multi_context entry point must fail cleanly on the stock
// (unmodified) library build.
func TestMultiContextUnavailableOnStock(t *testing.T) {
	us := bootUserspace(t, false)
	main := us.Proc.Main()

	if _, err := us.EGL.ReInitializeMC(main, ""); !errors.Is(err, egl.ErrNoMultiContext) {
		t.Errorf("ReInitializeMC: err = %v, want ErrNoMultiContext", err)
	}
	if err := us.EGL.SwitchMC(main, &egl.MCConnection{}); !errors.Is(err, egl.ErrNoMultiContext) {
		t.Errorf("SwitchMC: err = %v, want ErrNoMultiContext", err)
	}
	if err := us.EGL.SetTLSMC(main, []any{nil, nil}); !errors.Is(err, egl.ErrNoMultiContext) {
		t.Errorf("SetTLSMC: err = %v, want ErrNoMultiContext", err)
	}
	if vals := us.EGL.GetTLSMC(main); vals != nil {
		t.Errorf("GetTLSMC = %v, want nil", vals)
	}
	if conn := us.EGL.CurrentMC(main); conn != nil {
		t.Errorf("CurrentMC = %v, want nil", conn)
	}
}

// eglSwitchMC must reject connections that were not produced by
// eglReInitializeMC, and connections whose replica namespace has been torn
// down by eglCloseMC.
func TestSwitchMCUnknownReplica(t *testing.T) {
	us := bootUserspace(t, true)
	main := us.Proc.Main()

	if err := us.EGL.SwitchMC(main, &egl.MCConnection{}); !errors.Is(err, egl.ErrUnknownReplica) {
		t.Fatalf("SwitchMC(forged conn): err = %v, want ErrUnknownReplica", err)
	}

	conn, err := us.EGL.ReInitializeMC(main, "")
	if err != nil {
		t.Fatalf("ReInitializeMC: %v", err)
	}
	if got := us.EGL.CurrentMC(main); got != conn {
		t.Fatalf("CurrentMC = %v, want the fresh replica", got)
	}
	if err := us.EGL.CloseMC(main, conn); err != nil {
		t.Fatalf("CloseMC: %v", err)
	}
	if err := us.EGL.SwitchMC(main, conn); !errors.Is(err, egl.ErrUnknownReplica) {
		t.Fatalf("SwitchMC(closed replica): err = %v, want ErrUnknownReplica", err)
	}
	if got := us.EGL.CurrentMC(main); got != nil {
		t.Fatalf("CurrentMC after close = %v, want nil", got)
	}
}

// eglGetTLSMC/eglSetTLSMC migrate a replica connection and its current GLES
// context from one thread to another — the TLS half of the "create on one
// thread, render on another" paradigm (§8.1.1).
func TestGetSetTLSMCRoundTrip(t *testing.T) {
	us := bootUserspace(t, true)
	create := us.Proc.Main()
	render := us.Proc.NewThread("render")

	conn, err := us.EGL.ReInitializeMC(create, "")
	if err != nil {
		t.Fatalf("ReInitializeMC: %v", err)
	}
	ctx, err := us.EGL.CreateContext(create, 2, nil)
	if err != nil {
		t.Fatalf("CreateContext on replica: %v", err)
	}
	if err := us.EGL.MakeCurrent(create, nil, ctx); err != nil {
		t.Fatalf("MakeCurrent: %v", err)
	}

	vals := us.EGL.GetTLSMC(create)
	if len(vals) != 2 {
		t.Fatalf("GetTLSMC returned %d values, want 2", len(vals))
	}
	if vals[0] != conn {
		t.Fatalf("GetTLSMC[0] = %v, want the replica connection", vals[0])
	}
	if vals[1] == nil {
		t.Fatalf("GetTLSMC[1] = nil, want the current GLES context TLS")
	}

	if got := us.EGL.CurrentMC(render); got != nil {
		t.Fatalf("render thread CurrentMC before migration = %v, want nil", got)
	}
	if err := us.EGL.SetTLSMC(render, vals); err != nil {
		t.Fatalf("SetTLSMC: %v", err)
	}
	if got := us.EGL.CurrentMC(render); got != conn {
		t.Fatalf("render thread CurrentMC = %v, want the migrated connection", got)
	}
	back := us.EGL.GetTLSMC(render)
	if len(back) != 2 || back[0] != vals[0] || back[1] != vals[1] {
		t.Fatalf("round trip mismatch: GetTLSMC on render = %v, want %v", back, vals)
	}

	if err := us.EGL.SetTLSMC(render, []any{conn}); err == nil {
		t.Fatalf("SetTLSMC with 1 value: err = nil, want length error")
	}
	if err := us.EGL.SwitchMC(render, nil); err != nil {
		t.Fatalf("SwitchMC(nil): %v", err)
	}
	if got := us.EGL.CurrentMC(render); got != nil {
		t.Fatalf("CurrentMC after SwitchMC(nil) = %v, want nil", got)
	}
}
