package egl

import (
	"cycada/internal/android/gralloc"
	"cycada/internal/sim/kernel"
)

// Pipelined presents: with a presenter enabled, eglSwapBuffers submits the
// frame to a dedicated presenter thread instead of posting to SurfaceFlinger
// inline, so the app thread starts encoding frame N+1 while frame N is still
// being retried/composed. The pipeline is one frame deep per surface — a
// swap first waits on the surface's outstanding present (the completion
// fence) and returns that present's deferred error, which keeps the
// app-visible error stream one frame late but complete, and keeps at most
// one buffer of each surface in flight (the buffer being posted is the front
// buffer the app is not drawing into).
//
// Determinism: the presenter is a single thread consuming a FIFO channel, so
// posts reach SurfaceFlinger in submission order and the egl_present fault
// sequence is identical to the serial path. The retry/drop counters are only
// ever advanced by post() on the presenter thread — a present is counted
// exactly once no matter how many swaps observe its fence.

// presentReq is one submitted frame.
type presentReq struct {
	s     *Surface
	layer int
	buf   *gralloc.Buffer
	fence chan error
}

// presenter is the present-pipeline worker.
type presenter struct {
	t    *kernel.Thread
	ch   chan presentReq
	done chan struct{}
}

// EnablePipelinedPresents starts the presenter thread in proc and routes
// subsequent window-surface swaps through it. No-op if already enabled.
func (l *Lib) EnablePipelinedPresents(proc *kernel.Process) {
	if l.pipeline.Load() != nil {
		return
	}
	pr := &presenter{
		t:    proc.NewThread("egl-presenter"),
		ch:   make(chan presentReq, 16),
		done: make(chan struct{}),
	}
	go l.presentLoop(pr)
	l.pipeline.Store(pr)
}

// DisablePipelinedPresents drains in-flight presents and returns swaps to
// the inline path. The caller must not race it against SwapBuffers — it is
// a teardown/reconfiguration operation, not a per-frame switch.
func (l *Lib) DisablePipelinedPresents() {
	pr := l.pipeline.Swap(nil)
	if pr == nil {
		return
	}
	close(pr.ch)
	<-pr.done
	pr.t.Process().ExitThread(pr.t)
}

// PipelinedPresents reports whether the presenter is running.
func (l *Lib) PipelinedPresents() bool { return l.pipeline.Load() != nil }

// presentLoop runs on the presenter thread: each request's post — including
// its whole transient-fault retry loop — executes here, then the result is
// published through the request's fence.
func (l *Lib) presentLoop(pr *presenter) {
	for req := range pr.ch {
		req.fence <- l.post(pr.t, req.s, req.layer, req.buf)
	}
	close(pr.done)
}

// submitPipelined hands a frame to the presenter. It first waits on the
// surface's previous in-flight present and returns that present's error —
// the fence that bounds the pipeline at one frame per surface.
func (l *Lib) submitPipelined(pr *presenter, s *Surface, layer int, front *gralloc.Buffer) error {
	fence := make(chan error, 1)
	s.mu.Lock()
	prev := s.fence
	s.fence = fence
	s.mu.Unlock()
	var err error
	if prev != nil {
		err = <-prev
	}
	pr.ch <- presentReq{s: s, layer: layer, buf: front, fence: fence}
	return err
}

// WaitForPresent blocks until the surface's outstanding pipelined present
// (if any) has completed and returns its result. Screenshot-style readers
// call it to synchronize the scan-out image with the last swap.
func (l *Lib) WaitForPresent(s *Surface) error {
	s.mu.Lock()
	fence := s.fence
	s.fence = nil
	s.mu.Unlock()
	if fence == nil {
		return nil
	}
	return <-fence
}
