// Package egl simulates Android's EGL stack: the open-source libEGL.so
// front that apps link against, and the vendor-provided libEGL_tegra.so that
// it loads (paper §8.1). It implements window/pbuffer surfaces over gralloc
// GraphicBuffers, presentation through SurfaceFlinger, EGLImages, and the
// platform restriction at the heart of §8: a single EGL-to-GLES connection,
// with a single GLES API version, per process — "seemingly arbitrary, but
// enforced by both vendor and open source libraries".
//
// When built as Cycada's modified library, it additionally exposes the
// custom EGL_multi_context extension (Figure 4): eglReInitializeMC creates a
// replica of the vendor EGL and GLES libraries via the DLR-enabled linker,
// eglSwitchMC selects a thread's replica, and eglGetTLSMC/eglSetTLSMC
// migrate the now-thread-local connection state between threads.
package egl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	agles "cycada/internal/android/gles"
	"cycada/internal/android/gralloc"
	"cycada/internal/android/libc"
	"cycada/internal/android/sflinger"
	"cycada/internal/fault"
	"cycada/internal/gles/engine"
	"cycada/internal/linker"
	"cycada/internal/obs"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// Library names.
const (
	OpenLibName   = "libEGL.so"
	VendorLibName = "libEGL_tegra.so"
)

// Errors.
var (
	ErrNotInitialized  = fmt.Errorf("egl: display not initialized")
	ErrVersionConflict = fmt.Errorf("egl: a GLES connection with a different API version already exists in this process")
	ErrNoMultiContext  = fmt.Errorf("egl: EGL_multi_context not available (stock library)")
	ErrUnknownReplica  = fmt.Errorf("egl: SwitchMC to unknown replica (not created by eglReInitializeMC, or already closed)")
)

// Vendor is the vendor-provided EGL implementation: it owns the single
// EGL-to-GLES connection of its library instance.
type Vendor struct {
	gles *agles.VendorLib

	mu          sync.Mutex
	connVersion int
}

// Engine returns the vendor GLES engine this EGL instance is wired to.
func (v *Vendor) Engine() *engine.Lib { return v.gles.Engine() }

// Connect establishes (or validates) the singleton GLES connection. The
// first call locks the API version; subsequent calls with another version
// fail — the restriction DLR bypasses.
func (v *Vendor) Connect(version int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.connVersion == 0 {
		v.connVersion = version
		return nil
	}
	if v.connVersion != version {
		return fmt.Errorf("%w (have v%d, want v%d)", ErrVersionConflict, v.connVersion, version)
	}
	return nil
}

// ConnectedVersion reports the locked GLES version (0 = none yet).
func (v *Vendor) ConnectedVersion() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.connVersion
}

// Symbols implements linker.Instance.
func (v *Vendor) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		"eglVendorConnect": func(t *kernel.Thread, args ...any) any {
			return v.Connect(args[0].(int))
		},
	}
}

// VendorBlueprint returns the vendor EGL blueprint; it links the vendor GLES
// library, so a Dlforce of either replicates both.
func VendorBlueprint() *linker.Blueprint {
	return &linker.Blueprint{
		Name: VendorLibName,
		Deps: []string{agles.LibName},
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			return &Vendor{gles: ctx.Dep(agles.LibName).(*agles.VendorLib)}, nil
		},
	}
}

// Surface is an EGL surface: window surfaces are double-buffered
// GraphicBuffers posted to SurfaceFlinger; pbuffers are off-screen.
type Surface struct {
	W, H int

	// Per-surface present accounting (frame-health telemetry): retries of
	// transient present faults and presents dropped after exhausting the
	// retry budget, attributable to this surface.
	retried atomic.Uint64
	dropped atomic.Uint64

	mu        sync.Mutex
	front     *gralloc.Buffer
	back      *gralloc.Buffer
	layer     int // 0 = pbuffer
	target    *gpu.Target
	boundCtx  *engine.Context
	destroyed bool
	// fence is the completion fence of the surface's in-flight pipelined
	// present (pipeline.go); nil when none is outstanding.
	fence chan error
}

// PresentRetries reports transient present failures retried on this surface.
func (s *Surface) PresentRetries() uint64 { return s.retried.Load() }

// PresentsDropped reports presents of this surface abandoned after retries.
func (s *Surface) PresentsDropped() uint64 { return s.dropped.Load() }

// Target returns the raster target of the surface's back buffer.
func (s *Surface) Target() *gpu.Target {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// FrontImage returns the image most recently presented (tests).
func (s *Surface) FrontImage() *gpu.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.front.Img
}

// MCConnection is one EGL_multi_context connection: a replica of the vendor
// EGL and GLES libraries with its own isolated GLES connection (§8.1.1).
type MCConnection struct {
	Handle *linker.Handle
	Vendor *Vendor
	// Degraded reports that the replica load (Dlforce) failed and this
	// connection fell back to the shared vendor instance: the connection
	// works, but without replica isolation — it shares the process's GLES
	// connection and its locked API version, so a version mismatch surfaces
	// as ErrVersionConflict at eglCreateContext rather than an error cascade
	// here. The capability bit lets callers adapt (e.g. skip multi-version
	// tricks) instead of failing outright.
	Degraded bool
}

// Engine returns the replica's GLES engine.
func (c *MCConnection) Engine() *engine.Lib { return c.Vendor.Engine() }

// Lib is the open-source libEGL.so instance.
type Lib struct {
	vendor  *Vendor
	galloc  *gralloc.Lib
	flinger sflinger.Client
	bionic  *libc.Lib
	link    *linker.Linker

	multiContext bool
	mcKey        int // TLS slot holding the thread's MCConnection

	mu          sync.Mutex
	initialized bool
	surfaces    map[*Surface]bool // live surfaces, for introspection snapshots

	// Degradation and recovery counters (fault model, DESIGN.md §9).
	presentRetries  atomic.Uint64 // transient present failures that were retried
	presentsDropped atomic.Uint64 // presents abandoned after exhausting retries
	degradedMC      atomic.Uint64 // ReInitializeMC calls that fell back to shared

	// frameDeadline, when non-zero, is the present-latency budget in virtual
	// nanoseconds: a SwapBuffers exceeding it records a deadline-miss marker
	// and dumps the flight recorder (DESIGN.md §10). Zero disables the check.
	frameDeadline atomic.Int64

	// pipeline, when set, is the present-pipeline worker (pipeline.go):
	// swaps submit to it instead of posting inline.
	pipeline atomic.Pointer[presenter]
}

// PresentHistName names the eglSwapBuffers latency distribution
// (frame-health telemetry) in the owning kernel's histogram registry.
// Resolution happens per present through the thread, so a scheduler that
// swaps the kernel's registry scopes these samples to the running session.
const PresentHistName = "egl-present"

// Counter names for the duration-less present-health events, recorded into
// the owning kernel's counter registry (resolved per event through the
// thread, like PresentHistName). The telemetry plane windows these into
// retry/drop/miss rates.
const (
	CtrPresentRetried    = "egl-present-retried"
	CtrPresentDropped    = "egl-present-dropped"
	CtrFrameDeadlineMiss = "egl-frame-deadline-miss"
)

// SetFrameDeadline sets (or, with 0, clears) the present-latency budget.
func (l *Lib) SetFrameDeadline(d vclock.Duration) { l.frameDeadline.Store(int64(d)) }

// Surfaces returns a snapshot of the live surfaces (introspection).
func (l *Lib) Surfaces() []*Surface {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Surface, 0, len(l.surfaces))
	for s := range l.surfaces {
		out = append(out, s)
	}
	return out
}

func (l *Lib) trackSurface(s *Surface) *Surface {
	l.mu.Lock()
	if l.surfaces == nil {
		l.surfaces = make(map[*Surface]bool)
	}
	l.surfaces[s] = true
	l.mu.Unlock()
	return s
}

// Config parameterizes the open-source library build.
type Config struct {
	// MultiContext enables Cycada's EGL_multi_context extension — the
	// modified Android open-source EGL library of §8.1.1.
	MultiContext bool
	// PipelinedPresents starts a presenter thread at process setup and routes
	// window-surface swaps through it (see pipeline.go): frame N+1 encodes
	// while frame N posts. Screenshot-style readers must synchronize with
	// WaitForPresent before trusting the scan-out image.
	PipelinedPresents bool
}

// Initialize implements eglInitialize: it loads the vendor libraries (done
// by the linker when this library was loaded) and readies the display.
func (l *Lib) Initialize(t *kernel.Thread) (major, minor int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.initialized = true
	return 1, 4, nil
}

// Initialized reports whether eglInitialize has run.
func (l *Lib) Initialized() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.initialized
}

// QueryString implements eglQueryString(EGL_EXTENSIONS).
func (l *Lib) QueryString(t *kernel.Thread) string {
	s := "EGL_KHR_image_base EGL_ANDROID_image_native_buffer EGL_KHR_fence_sync"
	if l.multiContext {
		s += " EGL_multi_context"
	}
	return s
}

// Vendor returns the vendor EGL (tests and libui_wrapper).
func (l *Lib) Vendor() *Vendor { return l.vendor }

func (l *Lib) checkInit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.initialized {
		return ErrNotInitialized
	}
	return nil
}

// CreateWindowSurface implements eglCreateWindowSurface: a double-buffered
// on-screen surface at the given compositor position. A partial failure —
// the second buffer or the compositor layer — releases whatever was already
// acquired, so the error path never leaks gralloc handles.
func (l *Lib) CreateWindowSurface(t *kernel.Thread, x, y, w, h int) (*Surface, error) {
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	if inj := t.Faults(); inj != nil {
		if err := inj.Fail(fault.PointEGLSurface); err != nil {
			return nil, fmt.Errorf("egl window surface: %w", err)
		}
	}
	front, err := l.galloc.Alloc(t, w, h, gpu.FormatRGBA8888)
	if err != nil {
		return nil, fmt.Errorf("egl window surface: %w", err)
	}
	back, err := l.galloc.Alloc(t, w, h, gpu.FormatRGBA8888)
	if err != nil {
		err = fmt.Errorf("egl window surface: %w", err)
		return nil, errors.Join(err, l.galloc.Free(t, front))
	}
	layer, err := l.flinger.CreateLayer(t, x, y)
	if err != nil {
		err = fmt.Errorf("egl window surface: %w", err)
		return nil, errors.Join(err, l.galloc.Free(t, front), l.galloc.Free(t, back))
	}
	return l.trackSurface(&Surface{W: w, H: h, front: front, back: back, layer: layer, target: gpu.NewTarget(back.Img)}), nil
}

// CreatePbufferSurface implements eglCreatePbufferSurface.
func (l *Lib) CreatePbufferSurface(t *kernel.Thread, w, h int) (*Surface, error) {
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	if inj := t.Faults(); inj != nil {
		if err := inj.Fail(fault.PointEGLSurface); err != nil {
			return nil, fmt.Errorf("egl pbuffer: %w", err)
		}
	}
	buf, err := l.galloc.Alloc(t, w, h, gpu.FormatRGBA8888)
	if err != nil {
		return nil, fmt.Errorf("egl pbuffer: %w", err)
	}
	return l.trackSurface(&Surface{W: w, H: h, front: buf, back: buf, target: gpu.NewTarget(buf.Img)}), nil
}

// DestroySurface implements eglDestroySurface. Teardown is best-effort: a
// failing compositor transaction must not strand the gralloc buffers, so all
// three releases run and their errors are joined.
func (l *Lib) DestroySurface(t *kernel.Thread, s *Surface) error {
	// An in-flight pipelined present still references the front buffer;
	// drain it before the buffers are freed. Its deferred error is dropped —
	// the next-swap reader that would have collected it no longer exists.
	l.WaitForPresent(s)
	s.mu.Lock()
	if s.destroyed {
		s.mu.Unlock()
		return fmt.Errorf("egl: surface already destroyed")
	}
	s.destroyed = true
	front, back, layer := s.front, s.back, s.layer
	s.mu.Unlock()
	l.mu.Lock()
	delete(l.surfaces, s)
	l.mu.Unlock()
	var layerErr error
	if layer != 0 {
		layerErr = l.flinger.DestroyLayer(t, layer)
	}
	frontErr := l.galloc.Free(t, front)
	var backErr error
	if back != front {
		backErr = l.galloc.Free(t, back)
	}
	return errors.Join(layerErr, frontErr, backErr)
}

// CreateContext implements eglCreateContext, establishing (and locking) the
// process's GLES connection version on the stock library.
func (l *Lib) CreateContext(t *kernel.Thread, version int, share *engine.ShareGroup) (*engine.Context, error) {
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	if inj := t.Faults(); inj != nil {
		if err := inj.Fail(fault.PointEGLContext); err != nil {
			return nil, fmt.Errorf("eglCreateContext: %w", err)
		}
	}
	vendor := l.vendorFor(t)
	if err := vendor.Connect(version); err != nil {
		return nil, err
	}
	return vendor.Engine().CreateContext(t, version, share)
}

// DestroyContext implements eglDestroyContext.
func (l *Lib) DestroyContext(t *kernel.Thread, ctx *engine.Context) {
	ctx.Lib().DestroyContext(ctx)
}

// MakeCurrent implements eglMakeCurrent: it binds the context for the
// calling thread (enforcing the Android threading policy) and points the
// default framebuffer at the surface's back buffer.
func (l *Lib) MakeCurrent(t *kernel.Thread, draw *Surface, ctx *engine.Context) error {
	if ctx == nil {
		return l.vendorFor(t).Engine().MakeCurrent(t, nil)
	}
	if err := ctx.Lib().MakeCurrent(t, ctx); err != nil {
		return err
	}
	if draw != nil {
		draw.mu.Lock()
		draw.boundCtx = ctx
		tgt := draw.target
		draw.mu.Unlock()
		ctx.SetDefaultTarget(tgt)
	}
	return nil
}

// SwapBuffers implements eglSwapBuffers: it drains pending GL work, swaps
// the front and back buffers, re-points the default framebuffer, and posts
// the new front buffer to SurfaceFlinger.
func (l *Lib) SwapBuffers(t *kernel.Thread, s *Surface) error {
	if s == nil {
		return fmt.Errorf("egl: swap of nil surface")
	}
	start := t.VTime()
	s.mu.Lock()
	if s.destroyed {
		s.mu.Unlock()
		return fmt.Errorf("egl: swap of destroyed surface")
	}
	ctx := s.boundCtx
	s.front, s.back = s.back, s.front
	s.target = gpu.NewTarget(s.back.Img)
	front, layer := s.front, s.layer
	w, h := s.W, s.H
	tgt := s.target
	s.mu.Unlock()

	if ctx != nil {
		// Drain like glFlush: presentation is a sync point.
		ctx.Lib().Flush(t)
		ctx.SetDefaultTarget(tgt)
	}
	t.ChargeGPU(vclock.Duration(w*h) * t.Costs().PerPixelPresent)
	var err error
	if layer != 0 {
		if pr := l.pipeline.Load(); pr != nil {
			// Pipelined: frame N posts on the presenter thread while this
			// thread returns to encode frame N+1; the error returned here is
			// the previous frame's, read off its completion fence.
			err = l.submitPipelined(pr, s, layer, front)
		} else {
			err = l.post(t, s, layer, front)
		}
	}
	l.observePresent(t, t.VTime()-start)
	return err
}

// observePresent feeds the frame-health layer after a present: the latency
// histogram, the flight-recorder span, and — when a deadline is configured
// and missed — the deadline-miss marker plus an automatic flight dump.
func (l *Lib) observePresent(t *kernel.Thread, dur vclock.Duration) {
	t.Histograms().Histogram(PresentHistName).Observe(t.TID(), dur)
	t.FlightRecord(obs.FlightSpan, obs.CatEGL, "egl:present", int64(dur))
	if dl := l.frameDeadline.Load(); dl > 0 && int64(dur) > dl {
		t.Counters().Counter(CtrFrameDeadlineMiss).Inc()
		t.FlightRecord(obs.FlightMark, obs.CatEGL, "frame_deadline_miss", int64(dur))
		t.FlightDump("frame_deadline_miss")
	}
}

// presentAttempts bounds the retry loop in post: one initial attempt plus
// three retries with doubling backoff.
const presentAttempts = 4

// post delivers a frame to SurfaceFlinger, retrying transient (injected)
// Binder failures with bounded, doubling backoff. A present is the one seam
// where dropping work is acceptable — the next frame repaints the screen —
// so after exhausting retries it counts the dropped frame and reports the
// final error rather than escalating.
func (l *Lib) post(t *kernel.Thread, s *Surface, layer int, front *gralloc.Buffer) error {
	backoff := t.Costs().BinderTxn
	var err error
	for attempt := 0; attempt < presentAttempts; attempt++ {
		if err = l.postOnce(t, layer, front); err == nil {
			return nil
		}
		// Retry only transient faults; an organic error (unknown layer,
		// nil buffer) will not heal by retrying.
		if !fault.Injected(err) {
			return err
		}
		t.FlightRecord(obs.FlightFault, obs.CatEGL, "egl:present_fault", int64(attempt))
		if attempt < presentAttempts-1 {
			l.presentRetries.Add(1)
			s.retried.Add(1)
			t.Counters().Counter(CtrPresentRetried).Inc()
			t.ChargeCPU(backoff)
			backoff *= 2
		}
	}
	l.presentsDropped.Add(1)
	s.dropped.Add(1)
	t.Counters().Counter(CtrPresentDropped).Inc()
	return fmt.Errorf("egl: present dropped after %d attempts: %w", presentAttempts, err)
}

func (l *Lib) postOnce(t *kernel.Thread, layer int, front *gralloc.Buffer) error {
	if inj := t.Faults(); inj != nil {
		if err := inj.Fail(fault.PointEGLPresent); err != nil {
			return err
		}
	}
	return l.flinger.Post(t, layer, front)
}

// PresentRetries reports how many transient present failures were retried.
func (l *Lib) PresentRetries() uint64 { return l.presentRetries.Load() }

// PresentsDropped reports how many presents were abandoned after retries.
func (l *Lib) PresentsDropped() uint64 { return l.presentsDropped.Load() }

// CreateImageKHR implements eglCreateImageKHR over an Android native buffer:
// the returned EGLImage shares the GraphicBuffer's memory and records the
// buffer-to-texture association that blocks CPU locks (§6.2).
func (l *Lib) CreateImageKHR(t *kernel.Thread, buf *gralloc.Buffer) (*engine.EGLImage, error) {
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	if buf == nil || buf.Img == nil {
		return nil, fmt.Errorf("egl: CreateImageKHR of nil buffer")
	}
	buf.AssociateTexture()
	return engine.NewEGLImage(buf.Img), nil
}

// DestroyImageKHR implements eglDestroyImageKHR, implicitly disassociating
// the GraphicBuffer.
func (l *Lib) DestroyImageKHR(t *kernel.Thread, img *engine.EGLImage, buf *gralloc.Buffer) {
	img.Destroy()
	if buf != nil {
		buf.DisassociateTexture()
	}
}

// vendorFor resolves the vendor connection the calling thread should use:
// the thread's MC replica when one is selected, the process singleton
// otherwise.
func (l *Lib) vendorFor(t *kernel.Thread) *Vendor {
	if l.multiContext {
		if conn := l.CurrentMC(t); conn != nil {
			return conn.Vendor
		}
	}
	return l.vendor
}

// --- EGL_multi_context (Figure 4) ---

// ReInitializeMC implements eglReInitializeMC: it creates a fresh replica of
// the vendor EGL and GLES libraries (and, when replicaRoot is
// libui_wrapper.so, of everything that links against them) and selects it
// for the calling thread.
func (l *Lib) ReInitializeMC(t *kernel.Thread, replicaRoot string) (*MCConnection, error) {
	if !l.multiContext {
		return nil, ErrNoMultiContext
	}
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	if replicaRoot == "" {
		replicaRoot = VendorLibName
	}
	h, err := l.link.Dlforce(t, replicaRoot)
	degraded := false
	if err != nil {
		// Graceful degradation (DESIGN.md §9): a failed replica load falls
		// back to a shared-instance connection through the global namespace
		// instead of cascading the error. The connection carries the
		// Degraded capability bit so callers can adapt.
		h, err = l.link.Dlopen(t, replicaRoot)
		if err != nil {
			return nil, fmt.Errorf("eglReInitializeMC: %w", err)
		}
		degraded = true
		l.degradedMC.Add(1)
	}
	vi, ok := l.link.InstanceIn(h, VendorLibName)
	if !ok {
		l.link.Dlclose(h)
		return nil, fmt.Errorf("eglReInitializeMC: replica of %q does not contain %q", replicaRoot, VendorLibName)
	}
	conn := &MCConnection{Handle: h, Vendor: vi.(*Vendor), Degraded: degraded}
	if err := l.SwitchMC(t, conn); err != nil {
		l.link.Dlclose(h)
		return nil, err
	}
	return conn, nil
}

// DegradedReplicas reports how many MC connections fell back to the shared
// vendor instance because their replica load failed.
func (l *Lib) DegradedReplicas() uint64 { return l.degradedMC.Load() }

// SwitchMC implements eglSwitchMC: it selects which replica — and thus which
// GLES connection — the calling thread uses, by storing the connection in
// the thread's TLS (the previously global EGLConnection moved into TLS,
// §8.1.1).
func (l *Lib) SwitchMC(t *kernel.Thread, conn *MCConnection) error {
	if !l.multiContext {
		return ErrNoMultiContext
	}
	if conn == nil {
		t.TLSDelete(kernel.PersonaAndroid, l.mcKey)
		return nil
	}
	// A connection is only switchable while its replica namespace is alive
	// and still holds the vendor library the connection was built around.
	if conn.Handle == nil || conn.Vendor == nil {
		return ErrUnknownReplica
	}
	if vi, ok := l.link.InstanceIn(conn.Handle, VendorLibName); !ok || vi != conn.Vendor {
		return ErrUnknownReplica
	}
	return t.TLSSet(kernel.PersonaAndroid, l.mcKey, conn)
}

// CurrentMC returns the calling thread's selected MC connection, nil if none.
func (l *Lib) CurrentMC(t *kernel.Thread) *MCConnection {
	if !l.multiContext {
		return nil
	}
	v, _ := t.TLSGet(kernel.PersonaAndroid, l.mcKey)
	conn, _ := v.(*MCConnection)
	return conn
}

// GetTLSMC implements eglGetTLSMC: it extracts the thread's EGL/GLES TLS
// values (the MC connection and the replica's current GLES context) so they
// can be migrated to another thread.
func (l *Lib) GetTLSMC(t *kernel.Thread) []any {
	if !l.multiContext {
		return nil
	}
	conn := l.CurrentMC(t)
	var ctx any
	if conn != nil {
		ctx, _ = t.TLSGet(kernel.PersonaAndroid, conn.Engine().TLSKey())
	}
	return []any{conn, ctx}
}

// SetTLSMC implements eglSetTLSMC: it installs TLS values captured by
// GetTLSMC into the calling thread, completing the context migration the
// "create on one thread, render on another" paradigm needs (§8.1.1).
func (l *Lib) SetTLSMC(t *kernel.Thread, vals []any) error {
	if !l.multiContext {
		return ErrNoMultiContext
	}
	if len(vals) != 2 {
		return fmt.Errorf("egl: SetTLSMC needs 2 values, got %d", len(vals))
	}
	conn, _ := vals[0].(*MCConnection)
	if err := l.SwitchMC(t, conn); err != nil {
		return err
	}
	if conn != nil && vals[1] != nil {
		return t.TLSSet(kernel.PersonaAndroid, conn.Engine().TLSKey(), vals[1])
	}
	return nil
}

// CloseMC releases a replica connection (drops the replica namespace).
func (l *Lib) CloseMC(t *kernel.Thread, conn *MCConnection) error {
	if conn == nil {
		return nil
	}
	if l.CurrentMC(t) == conn {
		l.SwitchMC(t, nil)
	}
	return l.link.Dlclose(conn.Handle)
}

// Symbols implements linker.Instance with the EGL entry points diplomats
// resolve by name.
func (l *Lib) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		"eglInitialize": func(t *kernel.Thread, args ...any) any {
			maj, min, err := l.Initialize(t)
			if err != nil {
				return nil
			}
			return [2]int{maj, min}
		},
		"eglQueryString": func(t *kernel.Thread, args ...any) any { return l.QueryString(t) },
		"eglSwapBuffers": func(t *kernel.Thread, args ...any) any {
			s, _ := args[0].(*Surface)
			return l.SwapBuffers(t, s)
		},
	}
}

// Blueprint returns the open-source libEGL.so blueprint.
func Blueprint(cfg Config) *linker.Blueprint {
	return &linker.Blueprint{
		Name: OpenLibName,
		Deps: []string{VendorLibName, gralloc.LibName, "libc.so"},
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			lib := &Lib{
				vendor:       ctx.Dep(VendorLibName).(*Vendor),
				galloc:       ctx.Dep(gralloc.LibName).(*gralloc.Lib),
				bionic:       ctx.Dep("libc.so").(*libc.Lib),
				link:         ctx.Linker(),
				multiContext: cfg.MultiContext,
			}
			if cfg.MultiContext {
				lib.mcKey = lib.bionic.CreateKey("egl-mc-connection")
			}
			return lib, nil
		},
	}
}
