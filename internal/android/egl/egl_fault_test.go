// Fault-path tests for the EGL stack: partial-failure cleanup (no leaked
// gralloc handles), bounded present retry, and the degraded EGL_multi_context
// fallback — the recovery semantics of DESIGN.md §9, driven by deterministic
// injection schedules.
package egl_test

import (
	"errors"
	"strings"
	"testing"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
	"cycada/internal/fault"
)

func bootFaulty(t *testing.T, multiContext bool, sched fault.Schedule) (*stack.System, *stack.Userspace, *fault.Injector) {
	t.Helper()
	sys := stack.New(stack.Config{})
	us, err := sys.NewUserspace(stack.UserConfig{
		Name: "egl-fault-test",
		EGL:  egl.Config{MultiContext: multiContext},
	})
	if err != nil {
		t.Fatalf("NewUserspace: %v", err)
	}
	// Install after boot so process setup never consumes schedule checks.
	inj := fault.NewInjector(sched)
	sys.Kernel.SetFaultInjector(inj)
	return sys, us, inj
}

// A window surface needs two buffers and a compositor layer; when the second
// allocation fails, the first must be returned to gralloc.
func TestWindowSurfaceBackAllocFailureLeaksNothing(t *testing.T) {
	sys, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointGralloc}, After: 1, Times: 1,
	})
	main := us.Proc.Main()
	base := sys.Gralloc.Live()

	_, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if !fault.Injected(err) {
		t.Fatalf("CreateWindowSurface: err = %v, want injected gralloc fault", err)
	}
	if got := sys.Gralloc.Live(); got != base {
		t.Fatalf("live buffers = %d after failed create, want %d (front leaked)", got, base)
	}

	// The schedule is exhausted (times=1): the same call now succeeds.
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface after fault exhausted: %v", err)
	}
	if got := sys.Gralloc.Live(); got != base+2 {
		t.Fatalf("live buffers = %d, want %d", got, base+2)
	}
	if err := us.EGL.DestroySurface(main, s); err != nil {
		t.Fatalf("DestroySurface: %v", err)
	}
	if got := sys.Gralloc.Live(); got != base {
		t.Fatalf("live buffers = %d after destroy, want %d", got, base)
	}
}

// When the compositor layer creation fails, both already-allocated buffers
// must be returned.
func TestWindowSurfaceLayerFailureFreesBothBuffers(t *testing.T) {
	sys, us, inj := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointBinder},
	})
	main := us.Proc.Main()
	base := sys.Gralloc.Live()

	_, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if !fault.Injected(err) {
		t.Fatalf("CreateWindowSurface: err = %v, want injected binder fault", err)
	}
	if got := sys.Gralloc.Live(); got != base {
		t.Fatalf("live buffers = %d after failed create, want %d", got, base)
	}

	inj.Disarm()
	if _, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8); err != nil {
		t.Fatalf("CreateWindowSurface after disarm: %v", err)
	}
}

// Surface teardown is best-effort: a failing compositor transaction must not
// strand the surface's gralloc buffers.
func TestDestroySurfaceBestEffortUnderBinderFault(t *testing.T) {
	sys, us, inj := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointBinder},
	})
	inj.Disarm()
	main := us.Proc.Main()
	base := sys.Gralloc.Live()

	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	inj.Arm()
	err = us.EGL.DestroySurface(main, s)
	if !fault.Injected(err) {
		t.Fatalf("DestroySurface: err = %v, want the layer teardown fault reported", err)
	}
	if got := sys.Gralloc.Live(); got != base {
		t.Fatalf("live buffers = %d after best-effort destroy, want %d", got, base)
	}
}

// Transient present failures are retried with bounded backoff and never reach
// the app; the retry counter records them.
func TestPresentRetriesTransientFaults(t *testing.T) {
	_, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent}, Times: 2,
	})
	main := us.Proc.Main()

	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	ctx, err := us.EGL.CreateContext(main, 2, nil)
	if err != nil {
		t.Fatalf("CreateContext: %v", err)
	}
	if err := us.EGL.MakeCurrent(main, s, ctx); err != nil {
		t.Fatalf("MakeCurrent: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers with transient faults: %v", err)
	}
	if got := us.EGL.PresentRetries(); got != 2 {
		t.Fatalf("PresentRetries = %d, want 2", got)
	}
	if got := us.EGL.PresentsDropped(); got != 0 {
		t.Fatalf("PresentsDropped = %d, want 0", got)
	}
}

// A persistent present fault exhausts the retry budget: the frame is dropped
// and reported, not retried forever.
func TestPresentDroppedAfterRetryExhaustion(t *testing.T) {
	_, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent},
	})
	main := us.Proc.Main()

	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	err = us.EGL.SwapBuffers(main, s)
	if !fault.Injected(err) {
		t.Fatalf("SwapBuffers: err = %v, want injected present fault", err)
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("err = %v, want a dropped-present report", err)
	}
	if got := us.EGL.PresentsDropped(); got != 1 {
		t.Fatalf("PresentsDropped = %d, want 1", got)
	}
}

// An organic (non-injected) present failure must not be retried: posting to a
// destroyed surface's layer fails once, immediately.
func TestPresentOrganicFailureNotRetried(t *testing.T) {
	_, us, inj := bootFaulty(t, false, fault.Schedule{Rate: 0})
	inj.Disarm()
	main := us.Proc.Main()

	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	if err := us.EGL.DestroySurface(main, s); err != nil {
		t.Fatalf("DestroySurface: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); err == nil {
		t.Fatal("SwapBuffers on destroyed surface succeeded")
	}
	if got := us.EGL.PresentRetries(); got != 0 {
		t.Fatalf("PresentRetries = %d after organic failure, want 0", got)
	}
}

// A failed DLR replica load degrades eglReInitializeMC to a shared-instance
// connection with the Degraded capability bit, instead of failing outright.
func TestReInitializeMCDegradesOnDlforceFault(t *testing.T) {
	_, us, inj := bootFaulty(t, true, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointDlforce},
	})
	main := us.Proc.Main()

	conn, err := us.EGL.ReInitializeMC(main, "")
	if err != nil {
		t.Fatalf("ReInitializeMC under dlforce fault: %v", err)
	}
	if !conn.Degraded {
		t.Fatal("connection not marked Degraded")
	}
	if got := us.EGL.DegradedReplicas(); got != 1 {
		t.Fatalf("DegradedReplicas = %d, want 1", got)
	}
	if got := us.EGL.CurrentMC(main); got != conn {
		t.Fatalf("CurrentMC = %v, want the degraded connection", got)
	}
	// The degraded connection shares the process vendor instance: it works,
	// but without replica isolation.
	if conn.Vendor != us.EGL.Vendor() {
		t.Fatal("degraded connection does not share the global vendor instance")
	}
	if _, err := us.EGL.CreateContext(main, 2, nil); err != nil {
		t.Fatalf("CreateContext on degraded connection: %v", err)
	}
	if err := us.EGL.CloseMC(main, conn); err != nil {
		t.Fatalf("CloseMC of degraded connection: %v", err)
	}

	// With injection off, the same call produces an isolated replica.
	inj.Disarm()
	conn2, err := us.EGL.ReInitializeMC(main, "")
	if err != nil {
		t.Fatalf("ReInitializeMC after disarm: %v", err)
	}
	if conn2.Degraded {
		t.Fatal("fault-free replica marked Degraded")
	}
	if conn2.Vendor == us.EGL.Vendor() {
		t.Fatal("fault-free replica shares the global vendor instance")
	}
}

// Both the replica load and the global fallback failing surfaces an error —
// degradation does not mask a fully broken linker path.
func TestReInitializeMCFailsWhenFallbackAlsoFails(t *testing.T) {
	_, us, _ := bootFaulty(t, true, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointDlforce, fault.PointDlopen},
	})
	main := us.Proc.Main()

	_, err := us.EGL.ReInitializeMC(main, "")
	if !fault.Injected(err) {
		t.Fatalf("ReInitializeMC: err = %v, want injected dlopen fault", err)
	}
	if got := us.EGL.DegradedReplicas(); got != 0 {
		t.Fatalf("DegradedReplicas = %d, want 0 (no connection was produced)", got)
	}
	if got := us.EGL.CurrentMC(main); got != nil {
		t.Fatalf("CurrentMC = %v after failed ReInitializeMC, want nil", got)
	}
}

// eglCreateContext and surface creation faults surface as plain errors the
// caller can classify.
func TestContextAndSurfaceFaultsClassify(t *testing.T) {
	_, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLContext, fault.PointEGLSurface},
	})
	main := us.Proc.Main()

	if _, err := us.EGL.CreateContext(main, 2, nil); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("CreateContext: err = %v, want ErrInjected", err)
	}
	if _, err := us.EGL.CreatePbufferSurface(main, 8, 8); !fault.Injected(err) {
		t.Fatalf("CreatePbufferSurface: err = %v, want injected fault", err)
	}
}
