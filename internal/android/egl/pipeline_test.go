// Present-pipeline tests: exactly-once retry/drop accounting under
// pipelining, one-frame-late deferred errors, drain-on-destroy, and the
// -race guarantee that pipelined posts never race screenshot readers.
package egl_test

import (
	"testing"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
	"cycada/internal/fault"
)

func bootPipelined(t *testing.T, sched fault.Schedule) (*stack.System, *stack.Userspace) {
	t.Helper()
	sys := stack.New(stack.Config{})
	us, err := sys.NewUserspace(stack.UserConfig{
		Name: "egl-pipeline-test",
		EGL:  egl.Config{PipelinedPresents: true},
	})
	if err != nil {
		t.Fatalf("NewUserspace: %v", err)
	}
	if !us.EGL.PipelinedPresents() {
		t.Fatal("PipelinedPresents off after boot with the config flag set")
	}
	t.Cleanup(us.EGL.DisablePipelinedPresents)
	inj := fault.NewInjector(sched)
	sys.Kernel.SetFaultInjector(inj)
	return sys, us
}

// TestPipelinedRetryCountsExactlyOnce is the double-count regression: a
// present retried on the presenter thread must advance the lib- and
// per-surface retry counters once per retry, no matter how many swaps and
// fence waits observe it.
func TestPipelinedRetryCountsExactlyOnce(t *testing.T) {
	_, us := bootPipelined(t, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent}, Times: 2,
	})
	main := us.Proc.Main()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers: %v", err)
	}
	if err := us.EGL.WaitForPresent(s); err != nil {
		t.Fatalf("WaitForPresent: %v", err)
	}
	if got := us.EGL.PresentRetries(); got != 2 {
		t.Fatalf("lib PresentRetries = %d under pipelining, want exactly 2", got)
	}
	if got := s.PresentRetries(); got != 2 {
		t.Fatalf("surface PresentRetries = %d under pipelining, want exactly 2", got)
	}
	if got := us.EGL.PresentsDropped() + s.PresentsDropped(); got != 0 {
		t.Fatalf("dropped %d presents, want 0", got)
	}
}

// A pipelined present that exhausts its retries surfaces its error at the
// NEXT swap of the same surface (one frame late but complete), and the drop
// is counted exactly once.
func TestPipelinedDropReportedAtNextSwap(t *testing.T) {
	_, us := bootPipelined(t, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent},
	})
	main := us.Proc.Main()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("first SwapBuffers returned %v, want nil (frame still in flight)", err)
	}
	err = us.EGL.SwapBuffers(main, s)
	if !fault.Injected(err) {
		t.Fatalf("second SwapBuffers = %v, want the first frame's deferred injected error", err)
	}
	if got := s.PresentsDropped(); got != 1 {
		t.Fatalf("surface PresentsDropped = %d after first deferred report, want exactly 1", got)
	}
	// Drain the second frame; its drop is counted once too.
	if err := us.EGL.WaitForPresent(s); !fault.Injected(err) {
		t.Fatalf("WaitForPresent = %v, want the second frame's injected error", err)
	}
	if got := s.PresentsDropped(); got != 2 {
		t.Fatalf("surface PresentsDropped = %d, want exactly 2", got)
	}
	if got := us.EGL.PresentsDropped(); got != 2 {
		t.Fatalf("lib PresentsDropped = %d, want exactly 2", got)
	}
}

// DestroySurface must drain the surface's in-flight present before freeing
// its buffers.
func TestDestroySurfaceDrainsPipeline(t *testing.T) {
	sys, us := bootPipelined(t, fault.Schedule{Rate: 0})
	main := us.Proc.Main()
	base := sys.Gralloc.Live()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers: %v", err)
	}
	if err := us.EGL.DestroySurface(main, s); err != nil {
		t.Fatalf("DestroySurface with a present in flight: %v", err)
	}
	if got := sys.Gralloc.Live(); got != base {
		t.Fatalf("live buffers = %d after destroy, want %d", got, base)
	}
}

// TestPipelinedPresentVsScreenshotRace drives swaps through the presenter
// thread while another goroutine reads the composed screen — the -race gate
// for the pipeline: the scan-out image and the presenter must share no
// unsynchronized state.
func TestPipelinedPresentVsScreenshotRace(t *testing.T) {
	sys, us := bootPipelined(t, fault.Schedule{Rate: 0})
	main := us.Proc.Main()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 16, 16)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	const frames = 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			sys.Flinger.ScreenChecksum()
			sys.Flinger.Screen()
		}
	}()
	for i := 0; i < frames; i++ {
		if err := us.EGL.SwapBuffers(main, s); err != nil {
			t.Errorf("SwapBuffers %d: %v", i, err)
			break
		}
	}
	if err := us.EGL.WaitForPresent(s); err != nil {
		t.Fatalf("WaitForPresent: %v", err)
	}
	<-done
	if got := us.EGL.PresentsDropped(); got != 0 {
		t.Fatalf("dropped %d presents in a fault-free run", got)
	}
}

// Serial and pipelined swaps must leave the same final screen: the pipeline
// reorders work against the app thread, never against the display.
func TestPipelinedFinalScreenMatchesSerial(t *testing.T) {
	run := func(pipelined bool) uint32 {
		sys := stack.New(stack.Config{})
		us, err := sys.NewUserspace(stack.UserConfig{
			Name: "parity",
			EGL:  egl.Config{PipelinedPresents: pipelined},
		})
		if err != nil {
			t.Fatalf("NewUserspace: %v", err)
		}
		main := us.Proc.Main()
		s, err := us.EGL.CreateWindowSurface(main, 2, 3, 16, 16)
		if err != nil {
			t.Fatalf("CreateWindowSurface: %v", err)
		}
		for i := 0; i < 4; i++ {
			if err := us.EGL.SwapBuffers(main, s); err != nil {
				t.Fatalf("SwapBuffers: %v", err)
			}
		}
		if err := us.EGL.WaitForPresent(s); err != nil {
			t.Fatalf("WaitForPresent: %v", err)
		}
		if pipelined {
			defer us.EGL.DisablePipelinedPresents()
		}
		return sys.Flinger.ScreenChecksum()
	}
	serial, piped := run(false), run(true)
	if serial != piped {
		t.Fatalf("final screen %#x pipelined != %#x serial", piped, serial)
	}
}
