// Frame-health integration: a present blowing its deadline must dump the
// flight recorder with the miss marker; retried and dropped presents must be
// attributed to the surface that suffered them, not just the lib totals.
package egl_test

import (
	"bytes"
	"testing"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
	"cycada/internal/fault"
	"cycada/internal/obs"
	"cycada/internal/sim/vclock"
)

func TestFrameDeadlineMissDumpsFlightRecorder(t *testing.T) {
	fl := obs.NewFlightRecorder()
	var buf bytes.Buffer
	fl.SetOutput(&buf)
	// A real platform, so the present charges nonzero virtual time.
	sys := stack.New(stack.Config{Platform: vclock.Nexus7(), Flight: fl})
	us, err := sys.NewUserspace(stack.UserConfig{Name: "deadline-test", EGL: egl.Config{}})
	if err != nil {
		t.Fatalf("NewUserspace: %v", err)
	}
	main := us.Proc.Main()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}

	// A generous deadline: the present completes well inside it, no dump.
	us.EGL.SetFrameDeadline(vclock.Duration(1e12))
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers: %v", err)
	}
	if fl.Dumps() != 0 {
		t.Fatalf("dumps with a generous deadline = %d, want 0", fl.Dumps())
	}

	// 1ns: every present misses.
	us.EGL.SetFrameDeadline(1)
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers: %v", err)
	}
	if fl.Dumps() != 1 {
		t.Fatalf("dumps after the missed deadline = %d, want 1", fl.Dumps())
	}
	d := fl.Dump("inspect")
	if !d.Contains("frame_deadline_miss") {
		t.Fatalf("dump missing the deadline-miss marker:\n%s", d)
	}
	if !d.Contains("egl:present") {
		t.Fatalf("dump missing the present span tail:\n%s", d)
	}

	// Deadline cleared: presents stop dumping.
	us.EGL.SetFrameDeadline(0)
	if err := us.EGL.SwapBuffers(main, s); err != nil {
		t.Fatalf("SwapBuffers: %v", err)
	}
	if fl.Dumps() != 1 {
		t.Fatalf("dumps after clearing the deadline = %d, want 1", fl.Dumps())
	}
}

func TestPerSurfacePresentAccounting(t *testing.T) {
	_, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent}, Times: 2,
	})
	main := us.Proc.Main()

	victim, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	clean, err := us.EGL.CreateWindowSurface(main, 0, 10, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}

	// Two transient faults hit the first surface's present; the second
	// surface presents after the schedule is exhausted.
	if err := us.EGL.SwapBuffers(main, victim); err != nil {
		t.Fatalf("SwapBuffers(victim): %v", err)
	}
	if err := us.EGL.SwapBuffers(main, clean); err != nil {
		t.Fatalf("SwapBuffers(clean): %v", err)
	}

	if got := victim.PresentRetries(); got != 2 {
		t.Fatalf("victim.PresentRetries = %d, want 2", got)
	}
	if got := clean.PresentRetries(); got != 0 {
		t.Fatalf("clean.PresentRetries = %d, want 0", got)
	}
	if victim.PresentsDropped() != 0 || clean.PresentsDropped() != 0 {
		t.Fatal("transient faults must not drop frames")
	}
	// The lib totals agree with the per-surface attribution.
	if got := us.EGL.PresentRetries(); got != 2 {
		t.Fatalf("lib PresentRetries = %d, want 2", got)
	}

	// The live-surface registry tracks creation and destruction.
	if got := len(us.EGL.Surfaces()); got != 2 {
		t.Fatalf("live surfaces = %d, want 2", got)
	}
	if err := us.EGL.DestroySurface(main, clean); err != nil {
		t.Fatalf("DestroySurface: %v", err)
	}
	surfs := us.EGL.Surfaces()
	if len(surfs) != 1 || surfs[0] != victim {
		t.Fatalf("live surfaces after destroy = %v, want just the victim", surfs)
	}
}

func TestPerSurfaceDropAccounting(t *testing.T) {
	_, us, _ := bootFaulty(t, false, fault.Schedule{
		Rate: 1, Points: []fault.Point{fault.PointEGLPresent},
	})
	main := us.Proc.Main()
	s, err := us.EGL.CreateWindowSurface(main, 0, 0, 8, 8)
	if err != nil {
		t.Fatalf("CreateWindowSurface: %v", err)
	}
	if err := us.EGL.SwapBuffers(main, s); !fault.Injected(err) {
		t.Fatalf("SwapBuffers = %v, want injected fault after retry exhaustion", err)
	}
	if got := s.PresentsDropped(); got != 1 {
		t.Fatalf("surface PresentsDropped = %d, want 1", got)
	}
	if s.PresentRetries() == 0 {
		t.Fatal("retry budget was not consumed before the drop")
	}
}
