package stack

import (
	"errors"
	"testing"

	"cycada/internal/android/egl"
	agles "cycada/internal/android/gles"
	"cycada/internal/android/gralloc"
	"cycada/internal/gles/engine"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func bootStock(t *testing.T) (*System, *Userspace) {
	t.Helper()
	sys := New(Config{Platform: vclock.Nexus7()})
	us, err := sys.NewUserspace(UserConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	return sys, us
}

func bootCycadaStyle(t *testing.T) (*System, *Userspace) {
	t.Helper()
	sys := New(Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	us, err := sys.NewUserspace(UserConfig{
		Name:     "iosapp",
		Personas: []kernel.Persona{kernel.PersonaIOS, kernel.PersonaAndroid},
		EGL:      egl.Config{MultiContext: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, us
}

func TestStockWindowSurfaceRenderAndPresent(t *testing.T) {
	sys, us := bootStock(t)
	th := us.Proc.Main()

	surf, err := us.EGL.CreateWindowSurface(th, 0, 0, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := us.EGL.CreateContext(th, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.MakeCurrent(th, surf, ctx); err != nil {
		t.Fatal(err)
	}
	eng := ctx.Lib()
	eng.ClearColor(th, 1, 0, 0, 1)
	eng.Clear(th, engine.ColorBufferBit)
	if err := us.EGL.SwapBuffers(th, surf); err != nil {
		t.Fatal(err)
	}
	// The red frame reached the screen through SurfaceFlinger.
	if sys.Flinger.Frames() != 1 {
		t.Fatalf("flinger frames = %d, want 1", sys.Flinger.Frames())
	}
	if got := sys.Flinger.Screen().At(10, 10); got.R != 255 {
		t.Fatalf("screen pixel = %v, want red", got)
	}
	// After the swap, rendering goes to the other buffer.
	eng.ClearColor(th, 0, 1, 0, 1)
	eng.Clear(th, engine.ColorBufferBit)
	if err := us.EGL.SwapBuffers(th, surf); err != nil {
		t.Fatal(err)
	}
	if got := sys.Flinger.Screen().At(10, 10); got.G != 255 {
		t.Fatalf("screen pixel after second swap = %v, want green", got)
	}
}

func TestSingleConnectionVersionRestriction(t *testing.T) {
	// Paper §8: "Only a single EGL connection to a single GLES API version
	// can be made per-process."
	_, us := bootStock(t)
	th := us.Proc.Main()
	if _, err := us.EGL.CreateContext(th, 2, nil); err != nil {
		t.Fatal(err)
	}
	_, err := us.EGL.CreateContext(th, 1, nil)
	if !errors.Is(err, egl.ErrVersionConflict) {
		t.Fatalf("err = %v, want ErrVersionConflict", err)
	}
	// Same version is fine.
	if _, err := us.EGL.CreateContext(th, 2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiContextExtensionUnavailableOnStock(t *testing.T) {
	_, us := bootStock(t)
	th := us.Proc.Main()
	if _, err := us.EGL.ReInitializeMC(th, ""); !errors.Is(err, egl.ErrNoMultiContext) {
		t.Fatalf("err = %v, want ErrNoMultiContext", err)
	}
	if err := us.EGL.SetTLSMC(th, []any{nil, nil}); !errors.Is(err, egl.ErrNoMultiContext) {
		t.Fatalf("err = %v, want ErrNoMultiContext", err)
	}
}

func TestMultiContextBypassesVersionRestriction(t *testing.T) {
	// §8.1.1: DLR replicas give one process simultaneous GLES v1 and v2
	// connections.
	_, us := bootCycadaStyle(t)
	th := us.Proc.Main()

	// First connection: the process singleton, GLES 2 (e.g. WebKit).
	ctx2, err := us.EGL.CreateContext(th, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctx2.Version() != 2 {
		t.Fatal("wrong version")
	}

	// Second connection: a replica via eglReInitializeMC, GLES 1 (the game).
	conn, err := us.EGL.ReInitializeMC(th, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx1, err := us.EGL.CreateContext(th, 1, nil)
	if err != nil {
		t.Fatalf("GLES1 context on replica: %v", err)
	}
	if ctx1.Version() != 1 {
		t.Fatal("wrong version")
	}
	// The two contexts live on different engine instances.
	if ctx1.Lib() == ctx2.Lib() {
		t.Fatal("replica context shares the engine with the singleton")
	}
	// Replica constructor count: vendor GLES loaded twice (initial + 1 MC).
	if got := us.Linker.ConstructorRuns(agles.LibName); got != 2 {
		t.Fatalf("vendor GLES constructor runs = %d, want 2", got)
	}
	// Switching back to the singleton connection restores v2 creation and
	// rejects v1 again.
	if err := us.EGL.SwitchMC(th, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := us.EGL.CreateContext(th, 1, nil); !errors.Is(err, egl.ErrVersionConflict) {
		t.Fatalf("singleton still locked to v2: err = %v", err)
	}
	if err := us.EGL.CloseMC(th, conn); err != nil {
		t.Fatal(err)
	}
}

func TestMCTLSMigrationBetweenThreads(t *testing.T) {
	// §8.1.1: "create a context on one thread … pass the context information
	// to another thread" via eglGetTLSMC/eglSetTLSMC.
	_, us := bootCycadaStyle(t)
	main := us.Proc.Main()
	render := us.Proc.NewThread("render")

	conn, err := us.EGL.ReInitializeMC(main, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := us.EGL.CreateContext(main, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.MakeCurrent(main, nil, ctx); err != nil {
		t.Fatal(err)
	}
	vals := us.EGL.GetTLSMC(main)
	if vals[0] != conn {
		t.Fatal("GetTLSMC did not capture the connection")
	}
	if err := us.EGL.SetTLSMC(render, vals); err != nil {
		t.Fatal(err)
	}
	if us.EGL.CurrentMC(render) != conn {
		t.Fatal("render thread did not inherit the MC connection")
	}
	if conn.Engine().Current(render) != ctx {
		t.Fatal("render thread did not inherit the current GLES context")
	}
}

func TestEGLImageAssociationBlocksCPULock(t *testing.T) {
	// §6.2: "The Android GraphicBuffer object can be locked for CPU-only
	// access unless it has been associated with a GLES texture."
	_, us := bootStock(t)
	th := us.Proc.Main()
	g := &gralloc.Lib{}
	buf, err := g.Alloc(th, 16, 16, gpu.FormatRGBA8888)
	if err != nil {
		t.Fatal(err)
	}
	// Unassociated: lock works.
	if err := buf.LockCPU(); err != nil {
		t.Fatal(err)
	}
	if err := buf.UnlockCPU(); err != nil {
		t.Fatal(err)
	}
	// Associated via EGLImage: lock refused.
	img, err := us.EGL.CreateImageKHR(th, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.LockCPU(); !errors.Is(err, gralloc.ErrLockedBusy) {
		t.Fatalf("err = %v, want ErrLockedBusy", err)
	}
	// Destroying the EGLImage disassociates; lock works again.
	us.EGL.DestroyImageKHR(th, img, buf)
	if err := buf.LockCPU(); err != nil {
		t.Fatal(err)
	}
}

func TestGrallocLifecycleErrors(t *testing.T) {
	sys, us := bootStock(t)
	th := us.Proc.Main()
	g := &gralloc.Lib{}
	buf, err := g.Alloc(th, 8, 8, gpu.FormatRGBA8888)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Gralloc.Live() == 0 {
		t.Fatal("allocation not tracked")
	}
	if err := buf.UnlockCPU(); err == nil {
		t.Fatal("unlock of unlocked buffer succeeded")
	}
	if err := g.Free(th, buf); err != nil {
		t.Fatal(err)
	}
	if err := buf.LockCPU(); err == nil {
		t.Fatal("lock of freed buffer succeeded")
	}
	if err := g.Free(th, buf); err == nil {
		t.Fatal("double free succeeded")
	}
	if _, err := g.Alloc(th, -1, 5, gpu.FormatRGBA8888); err == nil {
		t.Fatal("negative-size alloc succeeded")
	}
}

func TestCreatorOnlyPolicyThroughEGL(t *testing.T) {
	_, us := bootStock(t)
	worker := us.Proc.NewThread("worker")
	other := us.Proc.NewThread("other")
	ctx, err := us.EGL.CreateContext(worker, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.MakeCurrent(other, nil, ctx); !errors.Is(err, engine.ErrWrongThread) {
		t.Fatalf("err = %v, want ErrWrongThread", err)
	}
}

func TestPbufferSurface(t *testing.T) {
	_, us := bootStock(t)
	th := us.Proc.Main()
	surf, err := us.EGL.CreatePbufferSurface(th, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := us.EGL.CreateContext(th, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.MakeCurrent(th, surf, ctx); err != nil {
		t.Fatal(err)
	}
	eng := ctx.Lib()
	eng.ClearColor(th, 0, 0, 1, 1)
	eng.Clear(th, engine.ColorBufferBit)
	if got := surf.Target().Color.At(5, 5); got.B != 255 {
		t.Fatalf("pbuffer pixel = %v, want blue", got)
	}
	if err := us.EGL.DestroySurface(th, surf); err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.DestroySurface(th, surf); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestUninitializedEGLRejected(t *testing.T) {
	sys := New(Config{Platform: vclock.Nexus7()})
	us, err := sys.NewUserspace(UserConfig{Name: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an uninitialized second process by loading a second library
	// copy via a fresh userspace is not possible (Initialize ran); instead
	// verify QueryString advertises MC only when configured.
	if got := us.EGL.QueryString(us.Proc.Main()); got == "" {
		t.Fatal("empty EGL extension string")
	}
	_, usMC := bootCycadaStyle(t)
	if got := usMC.EGL.QueryString(usMC.Proc.Main()); !contains(got, "EGL_multi_context") {
		t.Fatalf("MC library does not advertise EGL_multi_context: %q", got)
	}
	if got := us.EGL.QueryString(us.Proc.Main()); contains(got, "EGL_multi_context") {
		t.Fatal("stock library advertises EGL_multi_context")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSwapBuffersErrors(t *testing.T) {
	_, us := bootStock(t)
	th := us.Proc.Main()
	if err := us.EGL.SwapBuffers(th, nil); err == nil {
		t.Fatal("swap of nil surface succeeded")
	}
	surf, err := us.EGL.CreateWindowSurface(th, 0, 0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.DestroySurface(th, surf); err != nil {
		t.Fatal(err)
	}
	if err := us.EGL.SwapBuffers(th, surf); err == nil {
		t.Fatal("swap of destroyed surface succeeded")
	}
}
