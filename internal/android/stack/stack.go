// Package stack assembles the simulated Android system: a kernel with the
// gralloc and framebuffer drivers and the SurfaceFlinger Binder service, and
// per-process userspace with Bionic, the vendor GLES/EGL libraries and the
// open-source EGL front registered in a DLR-capable linker.
//
// Both the stock-Android configurations and Cycada build on this package;
// Cycada adds its own libraries (libEGLbridge, libui_wrapper, the GLES
// bridge) on top.
package stack

import (
	"fmt"
	"sync"

	"cycada/internal/android/egl"
	agles "cycada/internal/android/gles"
	"cycada/internal/android/gralloc"
	"cycada/internal/android/libc"
	"cycada/internal/android/sflinger"
	"cycada/internal/linker"
	"cycada/internal/obs"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// Default screen size: the Nexus 7 panel, scaled down 1/4 per axis to keep
// the software rasterizer tractable while preserving full-screen/partial
// work ratios.
const (
	ScreenW = 320
	ScreenH = 200
)

// System is a booted Android machine.
type System struct {
	Kernel  *kernel.Kernel
	Gralloc *gralloc.Device
	Flinger *sflinger.Flinger

	mu    sync.Mutex
	users []*Userspace
}

// Config describes the machine to boot.
type Config struct {
	Platform vclock.Platform
	Flavor   vclock.KernelFlavor // zero = platform default
	Clock    *vclock.Clock
	ScreenW  int
	ScreenH  int
	Tracer   *obs.Tracer         // nil = obs.Default
	Flight   *obs.FlightRecorder // nil = obs.DefaultFlight
	Hists    *obs.Histograms     // nil = obs.DefaultHistograms
	Counters *obs.Counters       // nil = obs.DefaultCounters
	// RasterWorkers bounds the GPU/compose worker pool (kernel.Config).
	// Zero = GOMAXPROCS; 1 = serial. Frames are byte-identical either way.
	RasterWorkers int
	// RasterPool overrides RasterWorkers with a pool shared across stacks.
	RasterPool *gpu.Pool
}

// New boots an Android system: kernel, gralloc driver, SurfaceFlinger.
func New(cfg Config) *System {
	if cfg.ScreenW == 0 {
		cfg.ScreenW, cfg.ScreenH = ScreenW, ScreenH
	}
	k := kernel.New(kernel.Config{
		Platform:      cfg.Platform,
		Flavor:        cfg.Flavor,
		Clock:         cfg.Clock,
		Tracer:        cfg.Tracer,
		Flight:        cfg.Flight,
		Histograms:    cfg.Hists,
		Counters:      cfg.Counters,
		RasterWorkers: cfg.RasterWorkers,
		RasterPool:    cfg.RasterPool,
	})
	g := gralloc.NewDevice()
	k.RegisterDevice(gralloc.DevicePath, g)
	f := sflinger.New(cfg.ScreenW, cfg.ScreenH)
	k.RegisterBinderService(sflinger.ServiceName, f)
	k.RegisterDevice(sflinger.FramebufferPath, f.Framebuffer())
	return &System{Kernel: k, Gralloc: g, Flinger: f}
}

// Userspace is the per-process Android userland.
type Userspace struct {
	Proc   *kernel.Process
	Linker *linker.Linker
	Bionic *libc.Lib
	EGL    *egl.Lib
}

// UserConfig parameterizes process creation.
type UserConfig struct {
	Name     string
	Personas []kernel.Persona // defaults to Android-only
	EGL      egl.Config       // MultiContext=true for Cycada's modified libEGL
}

// NewUserspace creates a process with the Android graphics userland
// registered in its linker and libEGL.so loaded and initialized (apps link
// against it at startup, as on real Android).
func (s *System) NewUserspace(cfg UserConfig) (*Userspace, error) {
	personas := cfg.Personas
	if len(personas) == 0 {
		personas = []kernel.Persona{kernel.PersonaAndroid}
	}
	proc, err := s.Kernel.NewProcess(cfg.Name, personas...)
	if err != nil {
		return nil, err
	}
	l := linker.New(proc)
	bionic := libc.New(kernel.PersonaAndroid)
	l.MustRegister(bionic.Blueprint())
	l.MustRegister(gralloc.Blueprint())
	for _, bp := range agles.SupportBlueprints() {
		l.MustRegister(bp)
	}
	l.MustRegister(agles.Blueprint())
	l.MustRegister(egl.VendorBlueprint())
	l.MustRegister(egl.Blueprint(cfg.EGL))

	main := proc.Main()
	h, err := l.Dlopen(main, egl.OpenLibName)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", egl.OpenLibName, err)
	}
	eglLib := h.Instance().(*egl.Lib)
	if _, _, err := eglLib.Initialize(main); err != nil {
		return nil, fmt.Errorf("eglInitialize: %w", err)
	}
	if cfg.EGL.PipelinedPresents {
		eglLib.EnablePipelinedPresents(proc)
	}
	u := &Userspace{Proc: proc, Linker: l, Bionic: bionic, EGL: eglLib}
	s.mu.Lock()
	s.users = append(s.users, u)
	s.mu.Unlock()
	return u, nil
}

// Shutdown tears the stack down for decommissioning: every userspace's
// present pipeline is drained and its presenter thread exited, and the
// compositor drops its layers and clears the screen. The stack must be
// quiescent — no session body or app thread still driving it — which is why
// the farm only calls this on a cleanly-failed device, never on one whose
// wedged session goroutine was abandoned (that stack is simply dropped).
// Idempotent.
func (s *System) Shutdown() {
	s.mu.Lock()
	users := append([]*Userspace(nil), s.users...)
	s.mu.Unlock()
	for _, u := range users {
		u.EGL.DisablePipelinedPresents()
	}
	s.Flinger.Reset()
}
