// Package gralloc simulates Android's graphics memory allocator: the gralloc
// kernel driver (an opaque-ioctl device) and the userspace GraphicBuffer
// API on top of it.
//
// GraphicBuffer objects are the Android counterpart of iOS IOSurfaces
// (paper §6): zero-copy graphics memory shared between processes and APIs.
// The package also models the Android limitation the IOSurface lock dance
// works around: a GraphicBuffer cannot be locked for CPU access while it is
// associated with a GLES texture through an EGLImage (§6.2).
package gralloc

import (
	"fmt"
	"sync"

	"cycada/internal/fault"
	"cycada/internal/linker"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

// DevicePath is where the gralloc driver registers its ioctl node.
const DevicePath = "/dev/gralloc"

// Opaque ioctl commands ("both the command and the arguments are
// intentionally obfuscated", paper §2). They are exported for the one other
// kernel-side client: LinuxCoreSurface, which allocates IOSurface backing
// memory through the same driver.
const (
	CmdAlloc uint32 = 0xC0DE0001
	CmdFree  uint32 = 0xC0DE0002
)

// ErrLockedBusy is returned when a CPU lock is refused.
var ErrLockedBusy = fmt.Errorf("gralloc: buffer associated with a GLES texture; CPU lock refused")

// Buffer is a GraphicBuffer: zero-copy graphics memory.
//
// Unlike sflinger.Flinger.Screen, Img here is deliberately the live image:
// zero-copy sharing between processes and APIs is the point of a
// GraphicBuffer, and concurrent CPU/GPU access is governed by the
// LockCPU/AssociateTexture protocol below (§6.2) rather than by copying.
type Buffer struct {
	ID     uint64
	W, H   int
	Format gpu.Format
	Img    *gpu.Image

	mu        sync.Mutex
	cpuLocked bool
	texBound  int // EGLImage-to-texture associations
	freed     bool
}

// LockCPU locks the buffer for CPU-only access. It fails while the buffer is
// associated with a GLES texture — the Android API limitation of §6.2.
func (b *Buffer) LockCPU() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return fmt.Errorf("gralloc: lock of freed buffer %d", b.ID)
	}
	if b.texBound > 0 {
		return fmt.Errorf("buffer %d: %w", b.ID, ErrLockedBusy)
	}
	if b.cpuLocked {
		return fmt.Errorf("gralloc: buffer %d already locked", b.ID)
	}
	b.cpuLocked = true
	return nil
}

// UnlockCPU releases a CPU lock.
func (b *Buffer) UnlockCPU() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.cpuLocked {
		return fmt.Errorf("gralloc: buffer %d not locked", b.ID)
	}
	b.cpuLocked = false
	return nil
}

// CPULocked reports whether the buffer is currently CPU-locked.
func (b *Buffer) CPULocked() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cpuLocked
}

// AssociateTexture records an EGLImage-to-texture association. The EGL
// library calls this when an EGLImage wrapping the buffer is created.
func (b *Buffer) AssociateTexture() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.texBound++
}

// DisassociateTexture removes an association (EGLImage destroyed).
func (b *Buffer) DisassociateTexture() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.texBound > 0 {
		b.texBound--
	}
}

// TextureAssociated reports whether any GLES texture references the buffer.
func (b *Buffer) TextureAssociated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.texBound > 0
}

// Device is the gralloc kernel driver.
type Device struct {
	mu     sync.Mutex
	nextID uint64
	bufs   map[uint64]*Buffer
}

// NewDevice creates the driver; register it with
// kernel.RegisterDevice(DevicePath, dev).
func NewDevice() *Device {
	return &Device{bufs: map[uint64]*Buffer{}}
}

// AllocRequest is the CmdAlloc payload.
type AllocRequest struct {
	W, H   int
	Format gpu.Format
}

// Ioctl implements kernel.Device with the opaque command set.
func (d *Device) Ioctl(t *kernel.Thread, cmd uint32, arg any) (any, error) {
	switch cmd {
	case CmdAlloc:
		req, ok := arg.(AllocRequest)
		if !ok {
			return nil, fmt.Errorf("gralloc: bad alloc request %T", arg)
		}
		if req.W <= 0 || req.H <= 0 {
			return nil, fmt.Errorf("gralloc: invalid size %dx%d", req.W, req.H)
		}
		if inj := t.Faults(); inj != nil {
			if err := inj.Fail(fault.PointGralloc); err != nil {
				t.SetErrno(int(kernel.ENOMEM))
				return nil, fmt.Errorf("gralloc alloc %dx%d: %w", req.W, req.H, err)
			}
		}
		d.mu.Lock()
		d.nextID++
		b := &Buffer{ID: d.nextID, W: req.W, H: req.H, Format: req.Format, Img: gpu.NewImage(req.W, req.H)}
		d.bufs[b.ID] = b
		d.mu.Unlock()
		t.ChargeCPU(vclock.Duration(req.W*req.H/1024) * t.Costs().PageMap)
		return b, nil
	case CmdFree:
		id, ok := arg.(uint64)
		if !ok {
			return nil, fmt.Errorf("gralloc: bad free request %T", arg)
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		b, ok := d.bufs[id]
		if !ok {
			return nil, fmt.Errorf("gralloc: free of unknown buffer %d", id)
		}
		b.mu.Lock()
		b.freed = true
		b.mu.Unlock()
		delete(d.bufs, id)
		return nil, nil
	default:
		return nil, fmt.Errorf("gralloc: unknown ioctl %#x", cmd)
	}
}

// Live reports the number of live buffers (leak tests).
func (d *Device) Live() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.bufs)
}

// Lib is the userspace GraphicBuffer library.
type Lib struct{}

// Alloc allocates a GraphicBuffer through the driver.
func (l *Lib) Alloc(t *kernel.Thread, w, h int, format gpu.Format) (*Buffer, error) {
	r, err := t.Ioctl(DevicePath, CmdAlloc, AllocRequest{W: w, H: h, Format: format})
	if err != nil {
		return nil, fmt.Errorf("gralloc alloc: %w", err)
	}
	return r.(*Buffer), nil
}

// Free releases a GraphicBuffer.
func (l *Lib) Free(t *kernel.Thread, b *Buffer) error {
	if _, err := t.Ioctl(DevicePath, CmdFree, b.ID); err != nil {
		return fmt.Errorf("gralloc free: %w", err)
	}
	return nil
}

// Symbols implements linker.Instance.
func (l *Lib) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		"gralloc_alloc": func(t *kernel.Thread, args ...any) any {
			b, err := l.Alloc(t, args[0].(int), args[1].(int), args[2].(gpu.Format))
			if err != nil {
				return nil
			}
			return b
		},
		"gralloc_free": func(t *kernel.Thread, args ...any) any {
			if err := l.Free(t, args[0].(*Buffer)); err != nil {
				return 1
			}
			return 0
		},
	}
}

// LibName is the gralloc module's library name.
const LibName = "gralloc.tegra.so"

// Blueprint returns the linker blueprint for the gralloc library.
func Blueprint() *linker.Blueprint {
	return &linker.Blueprint{
		Name: LibName,
		Deps: []string{"libc.so"},
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			return &Lib{}, nil
		},
	}
}
