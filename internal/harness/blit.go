package harness

import (
	"fmt"

	"cycada/internal/gles/engine"
	"cycada/internal/gles/glesapi"
	"cycada/internal/graphics2d"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
)

// blitState caches the PassMark app's canvas-upload program and texture.
type blitState struct {
	ready  bool
	prog   uint32
	posLoc int
	uvLoc  int
	texLoc int
	tex    uint32
}

const canvasVS = `
attribute vec4 a_pos;
attribute vec2 a_uv;
varying vec2 v_uv;
void main() { gl_Position = a_pos; v_uv = a_uv; }
`

const canvasFS = `
precision mediump float;
varying vec2 v_uv;
uniform sampler2D u_tex;
void main() { gl_FragColor = texture2D(u_tex, v_uv); }
`

// uploadCanvas pushes a CPU-painted canvas to the current render target: the
// app-level path PassMark's 2D tests use to display their frames.
func uploadCanvas(t *kernel.Thread, gl *glesapi.GL, st *blitState, cv *graphics2d.Canvas) error {
	if !st.ready {
		vs := gl.CreateShader(t, engine.VertexShaderKind)
		gl.ShaderSource(t, vs, canvasVS)
		gl.CompileShader(t, vs)
		fs := gl.CreateShader(t, engine.FragmentShaderKind)
		gl.ShaderSource(t, fs, canvasFS)
		gl.CompileShader(t, fs)
		prog := gl.CreateProgram(t)
		gl.AttachShader(t, prog, vs)
		gl.AttachShader(t, prog, fs)
		gl.LinkProgram(t, prog)
		if gl.GetProgramiv(t, prog, engine.LinkStatus) != 1 {
			return fmt.Errorf("harness blit: %s", gl.GetProgramInfoLog(t, prog))
		}
		st.prog = prog
		st.posLoc = gl.GetAttribLocation(t, prog, "a_pos")
		st.uvLoc = gl.GetAttribLocation(t, prog, "a_uv")
		st.texLoc = gl.GetUniformLocation(t, prog, "u_tex")
		texs := gl.GenTextures(t, 1)
		st.tex = texs[0]
		st.ready = true
	}
	img := cv.Image()
	gl.BindTexture(t, st.tex)
	gl.TexImage2D(t, img.W, img.H, gpu.FormatRGBA8888, nil)
	gl.TexSubImage2D(t, 0, 0, img.W, img.H, gpu.FormatRGBA8888, img.Pix)
	gl.UseProgram(t, st.prog)
	gl.Uniform1i(t, st.texLoc, 0)
	gl.ActiveTexture(t, 0)
	gl.BindTexture(t, st.tex)
	gl.VertexAttribPointer(t, st.posLoc, 4, []float32{-1, -1, 0, 1, 1, -1, 0, 1, 1, 1, 0, 1, -1, 1, 0, 1})
	gl.EnableVertexAttribArray(t, st.posLoc)
	gl.VertexAttribPointer(t, st.uvLoc, 2, []float32{0, 1, 1, 1, 1, 0, 0, 0})
	gl.EnableVertexAttribArray(t, st.uvLoc)
	gl.DrawElements(t, engine.Triangles, []uint16{0, 1, 2, 0, 2, 3})
	if e := gl.GetError(t); e != engine.NoError {
		return fmt.Errorf("harness blit: GL error %#x", e)
	}
	return nil
}
