package harness

import (
	"fmt"
	"sort"
	"strings"

	"cycada/internal/core/diplomat"
	"cycada/internal/core/profile"
	"cycada/internal/core/system"
	"cycada/internal/gles/registry"
	"cycada/internal/ios/eagl"
	"cycada/internal/jsvm"
	"cycada/internal/linker"
	"cycada/internal/obs"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
	"cycada/internal/workloads/passmark"
	"cycada/internal/workloads/sunspider"
)

// Table1 renders the paper's Table 1 from the live registries.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: OpenGL ES Implementation Breakdown\n")
	fmt.Fprintf(&b, "%-34s %6s %8s %8s\n", "OpenGL ES", "iOS", "Android", "Khronos")
	row := func(name string, ios, android, khronos any) {
		fmt.Fprintf(&b, "%-34s %6v %8v %8v\n", name, ios, android, khronos)
	}
	row("1.0 Standard Functions", len(registry.GLES1Standard()), len(registry.GLES1Standard()), len(registry.GLES1Standard()))
	row("2.0 Standard Functions", len(registry.GLES2Standard()), len(registry.GLES2Standard()), len(registry.GLES2Standard()))
	row("Extension Functions",
		registry.CountFuncs(registry.IOSExtensions()),
		registry.CountFuncs(registry.AndroidExtensions()),
		registry.CountFuncs(registry.KhronosExtensions()))
	row("Common Extension Functions", registry.CountFuncs(registry.CommonExtensions), registry.CountFuncs(registry.CommonExtensions), "-")
	row("Extensions", len(registry.IOSExtensions()), len(registry.AndroidExtensions()), len(registry.KhronosExtensions()))
	row("Extensions not in Android", len(registry.IOSOnlyExtensions), 0, "-")
	row("Extensions not in iOS", 0, len(registry.AndroidOnlyExtensions), "-")
	return b.String()
}

// Table2 renders Table 2 from a live Cycada bridge census.
func Table2() (string, error) {
	sys := system.New(system.Config{})
	app, err := sys.NewIOSApp(system.AppConfig{Name: "census"})
	if err != nil {
		return "", err
	}
	census := app.Bridge.Census()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Cycada iOS OpenGL ES Support Breakdown\n")
	fmt.Fprintf(&b, "%-32s %9s\n", "Type of Support", "Functions")
	rows := []struct {
		label string
		kind  diplomat.Kind
	}{
		{"Direct Diplomats", diplomat.Direct},
		{"Indirect Diplomats", diplomat.Indirect},
		{"Data-dependent Diplomats", diplomat.DataDependent},
		{"Multi-Diplomats", diplomat.Multi},
		{"Unimplemented (never called)", diplomat.Unimplemented},
	}
	total := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %9d\n", r.label, census[r.kind])
		total += census[r.kind]
	}
	fmt.Fprintf(&b, "%-32s %9d\n", "Total", total)
	// The EAGL census from §5 accompanies Table 2's discussion.
	eaglCounts := map[eagl.Impl]int{}
	for _, impl := range eagl.Methods {
		eaglCounts[impl]++
	}
	fmt.Fprintf(&b, "\nEAGL methods: %d total — %d multi-diplomat, %d from scratch, %d unimplemented\n",
		len(eagl.Methods), eaglCounts[eagl.ImplMultiDiplomat], eaglCounts[eagl.ImplScratch], eaglCounts[eagl.ImplUnimplemented])
	return b.String(), nil
}

// Table3Row is one measured micro-benchmark.
type Table3Row struct {
	Name string
	Time vclock.Duration
}

// Table3 runs the lmbench-style kernel and diplomatic-call micro-benchmarks.
func Table3() (string, error) {
	const iters = 2000
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Kernel-level / ABI Micro-Benchmarks\n\nNull Syscall\n")

	nullRows := []struct {
		label string
		id    ConfigID
	}{
		{"Stock Android", StockAndroid},
		{"Cycada Android", CycadaAndroid},
		{"Cycada iOS", CycadaIOS},
		{"iPad mini iOS", NativeIOS},
	}
	for _, r := range nullRows {
		d, err := Boot(r.id)
		if err != nil {
			return "", err
		}
		t := d.NullThread
		start := t.VTime()
		for i := 0; i < iters; i++ {
			t.Null()
		}
		per := (t.VTime() - start) / iters
		fmt.Fprintf(&b, "  %-18s %6d ns\n", r.label, per.AsTime().Nanoseconds())
	}

	fmt.Fprintf(&b, "\nDiplomatic Calls (measured on Cycada iOS)\n")
	rows, err := DiplomaticCallBench(iters)
	if err != nil {
		return "", err
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %6d ns\n", r.Name, r.Time.AsTime().Nanoseconds())
	}
	return b.String(), nil
}

// DiplomaticCallBench measures the Table 3 diplomatic-call rows: a standard
// function call, a bare diplomat, a diplomat with empty prelude/postlude,
// and a diplomat with the GLES prelude/postlude.
func DiplomaticCallBench(iters int) ([]Table3Row, error) {
	sys := system.New(system.Config{})
	app, err := sys.NewIOSApp(system.AppConfig{Name: "lmbench"})
	if err != nil {
		return nil, err
	}
	t := app.Main()

	// A no-op domestic library to call through.
	app.Linker.MustRegister(&linker.Blueprint{
		Name: "libnoop.so",
		New: func(ctx *linker.LoadContext) (linker.Instance, error) {
			return noopLib{}, nil
		},
	})
	h, err := app.Linker.Dlopen(t, "libnoop.so")
	if err != nil {
		return nil, err
	}
	base := diplomat.Config{
		Foreign:  kernel.PersonaIOS,
		Domestic: kernel.PersonaAndroid,
		Linker:   app.Linker,
		Library:  h,
	}
	bare, err := diplomat.New(base, "noop", diplomat.Direct, nil)
	if err != nil {
		return nil, err
	}
	emptyCfg := base
	emptyCfg.Hooks = &diplomat.Hooks{}
	withEmpty, err := diplomat.New(emptyCfg, "noop", diplomat.Direct, nil)
	if err != nil {
		return nil, err
	}
	glCfg := base
	glCfg.Hooks = &diplomat.Hooks{
		GL:       true,
		Prelude:  func(t *kernel.Thread) { app.Impersonator.GateEnter() },
		Postlude: func(t *kernel.Thread) { app.Impersonator.GateExit() },
	}
	withGL, err := diplomat.New(glCfg, "noop", diplomat.Direct, nil)
	if err != nil {
		return nil, err
	}

	sym := app.Linker.MustSym(h, "noop")
	measure := func(name string, f func()) vclock.Duration {
		var sp obs.Span
		if t.TraceEnabled() {
			sp = t.TraceBegin(obs.CatHarness, "lmbench:"+name)
		}
		start := t.VTime()
		for i := 0; i < iters; i++ {
			f()
		}
		per := (t.VTime() - start) / vclock.Duration(iters)
		t.TraceEnd(sp)
		return per
	}
	rows := []Table3Row{
		{Name: "Standard Function", Time: measure("function", func() { sym.Fn(t) })},
		{Name: "Diplomat", Time: measure("diplomat", func() { bare.Call(t) })},
		{Name: "Diplomat + Pre/Post", Time: measure("diplomat-prepost", func() { withEmpty.Call(t) })},
		{Name: "Diplomat + GL Pre/Post", Time: measure("diplomat-gl", func() { withGL.Call(t) })},
	}
	return rows, nil
}

type noopLib struct{}

func (noopLib) Symbols() map[string]linker.Fn {
	return map[string]linker.Fn{
		"noop": func(t *kernel.Thread, args ...any) any {
			t.ChargeCPU(t.Costs().FnCall)
			return nil
		},
	}
}

// Fig5Series is one configuration's SunSpider latencies.
type Fig5Series struct {
	Label  string
	ByTest map[string]vclock.Duration
	Total  vclock.Duration
}

// Fig5 runs SunSpider on every configuration (plus native iOS with JIT
// explicitly disabled) and renders the normalized-overhead table of
// Figure 5. It returns the rendered table and the CycadaIOS profiler for
// Figures 7 and 9.
func Fig5() (string, *profile.Profiler, error) {
	series := []struct {
		label string
		id    ConfigID
		opts  []jsvm.Option
	}{
		{"Cycada iOS", CycadaIOS, nil},
		{"Cycada Android", CycadaAndroid, nil},
		{"iOS", NativeIOS, nil},
		{"iOS (JS JIT disabled)", NativeIOS, []jsvm.Option{jsvm.WithoutJIT()}},
		{"Android", StockAndroid, nil},
	}
	var prof *profile.Profiler
	var results []Fig5Series
	for _, s := range series {
		d, err := Boot(s.id)
		if err != nil {
			return "", nil, err
		}
		browser, t, err := d.NewBrowser(s.opts...)
		if err != nil {
			return "", nil, err
		}
		if err := browser.Load(sunspider.Page); err != nil {
			return "", nil, err
		}
		var sp obs.Span
		if t.TraceEnabled() {
			sp = t.TraceBegin(obs.CatHarness, "sunspider:"+s.label)
		}
		res, err := sunspider.RunInBrowser(browser, t)
		t.TraceEnd(sp)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", s.label, err)
		}
		fs := Fig5Series{Label: s.label, ByTest: map[string]vclock.Duration{}}
		for _, r := range res {
			fs.ByTest[r.Name] = r.Elapsed
		}
		fs.Total = sunspider.Total(res)
		results = append(results, fs)
		if s.id == CycadaIOS && s.opts == nil && d.CycadaApp != nil {
			prof = d.CycadaApp.Profiler
		}
	}

	baseline := results[len(results)-1] // Android
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: SunSpider normalized overhead (lower is better; Android = 1.0)\n")
	fmt.Fprintf(&b, "%-12s", "test")
	for _, s := range results {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	fmt.Fprintf(&b, "\n")
	names := make([]string, 0, len(baseline.ByTest))
	for _, test := range sunspider.Tests() {
		names = append(names, test.Name)
	}
	for _, name := range names {
		fmt.Fprintf(&b, "%-12s", name)
		for _, s := range results {
			fmt.Fprintf(&b, " %22.2f", float64(s.ByTest[name])/float64(baseline.ByTest[name]))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "%-12s", "Total")
	for _, s := range results {
		fmt.Fprintf(&b, " %22.2f", float64(s.Total)/float64(baseline.Total))
	}
	fmt.Fprintf(&b, "\n")
	return b.String(), prof, nil
}

// Fig6 runs the PassMark suite on the three compared configurations and
// renders Figure 6 (normalized to stock Android; higher is better). It also
// returns the Cycada iOS profiler for Figures 8 and 10.
func Fig6() (string, *profile.Profiler, error) {
	ids := []ConfigID{CycadaIOS, CycadaAndroid, NativeIOS, StockAndroid}
	scores := map[ConfigID]map[string]float64{}
	var prof *profile.Profiler
	// Frame-health telemetry rides along with the FPS scores: enable the
	// histogram registry for the run (restoring its prior state after) and
	// start each configuration's frame histogram from zero.
	wasEnabled := obs.DefaultHistograms.Enabled()
	obs.DefaultHistograms.SetEnabled(true)
	defer obs.DefaultHistograms.SetEnabled(wasEnabled)
	for _, id := range ids {
		FrameHistogram(id).Reset()
	}
	for _, id := range ids {
		d, err := Boot(id)
		if err != nil {
			return "", nil, err
		}
		host, err := d.NewPassmarkHost()
		if err != nil {
			return "", nil, err
		}
		res, err := passmark.RunAll(host, d.Variant, 6)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", id, err)
		}
		scores[id] = map[string]float64{}
		for _, r := range res {
			scores[id][r.Test] = r.Score
		}
		if id == CycadaIOS && d.CycadaApp != nil {
			prof = d.CycadaApp.Profiler
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: PassMark graphics, normalized performance (higher is better; Android = 1.0)\n")
	fmt.Fprintf(&b, "%-20s %12s %15s %8s\n", "test", "Cycada iOS", "Cycada Android", "iOS")
	for _, test := range passmark.TestNames() {
		base := scores[StockAndroid][test]
		fmt.Fprintf(&b, "%-20s %12.2f %15.2f %8.2f\n", test,
			scores[CycadaIOS][test]/base,
			scores[CycadaAndroid][test]/base,
			scores[NativeIOS][test]/base)
	}
	fmt.Fprintf(&b, "\nFrame health: per-present latency across the PassMark run (virtual time)\n")
	fmt.Fprintf(&b, "%-20s %8s %10s %10s %10s %10s\n", "config", "frames", "p50-us", "p95-us", "p99-us", "max-us")
	for _, id := range ids {
		h := FrameHistogram(id)
		fmt.Fprintf(&b, "%-20s %8d %10.1f %10.1f %10.1f %10.1f\n", id,
			h.Count(), h.P50().Micros(), h.P95().Micros(), h.P99().Micros(), h.Max().Micros())
	}
	return b.String(), prof, nil
}

// FigProfile renders Figures 7/9 (SunSpider) or 8/10 (PassMark) from a
// profiler: percentage of total GLES time and average µs per call for the
// top 14 functions.
func FigProfile(title string, prof *profile.Profiler) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (top 14 functions by total GLES time)\n", title)
	fmt.Fprintf(&b, "%-36s %8s %8s %12s\n", "function", "calls", "%time", "avg-us/call")
	for _, s := range prof.Top(14) {
		fmt.Fprintf(&b, "%-36s %8d %7.2f%% %12.1f\n", s.Name, s.Calls, s.Percent, s.Avg().Micros())
	}
	return b.String()
}

// SortedProfileNames lists all profiled function names (tests).
func SortedProfileNames(prof *profile.Profiler) []string {
	var names []string
	for _, s := range prof.Samples() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}
