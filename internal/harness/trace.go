package harness

import (
	"fmt"

	"cycada/internal/core/system"
	"cycada/internal/ios/eagl"
	"cycada/internal/obs"
)

// TraceScenario exercises every traced subsystem in one short run, so that a
// trace produced with `cycadabench -trace` always contains diplomat calls,
// DLR replica loads (with per-replica constructor runs), a thread
// impersonation session, and the EGL present path.
//
// The shape is the paper's §7 motivating case: an EAGL context is created on
// a worker thread (so its creator is not the thread-group leader), then made
// current and presented from a different thread — which is exactly when
// aegl_bridge_set_tls must impersonate the creator.
func TraceScenario() error {
	sys := system.New(system.Config{})
	app, err := sys.NewIOSApp(system.AppConfig{Name: "tracedemo"})
	if err != nil {
		return err
	}
	render := app.Proc.NewThread("render")
	presenter := app.Proc.NewThread("present")

	// Context creation on the render thread: the create_context multi
	// diplomat replicates libui_wrapper and the EGL/GLES libraries (DLR).
	sp := render.TraceBegin(obs.CatHarness, "scenario:setup")
	ctx, err := app.EAGL.NewContext(render, eagl.APIGLES2)
	if err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	if err := app.EAGL.SetCurrentContext(render, ctx); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	layer, err := app.NewLayer(render, 0, 0, 64, 48)
	if err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	fbo := app.GL.GenFramebuffers(render, 1)
	app.GL.BindFramebuffer(render, fbo[0])
	rb := app.GL.GenRenderbuffers(render, 1)
	app.GL.BindRenderbuffer(render, rb[0])
	if err := ctx.RenderbufferStorageFromDrawable(render, layer); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	app.GL.FramebufferRenderbuffer(render, rb[0])
	render.TraceEnd(sp)

	// Present from a different thread: set_tls impersonates the creator.
	sp = presenter.TraceBegin(obs.CatHarness, "scenario:present")
	if err := app.EAGL.SetCurrentContext(presenter, ctx); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	if err := ctx.PresentRenderbuffer(presenter); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	if err := app.EAGL.SetCurrentContext(presenter, nil); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	presenter.TraceEnd(sp)

	if err := app.EAGL.SetCurrentContext(render, nil); err != nil {
		return fmt.Errorf("trace scenario: %w", err)
	}
	return ctx.Release(render)
}
