// Package harness boots the four system configurations of the paper's
// evaluation (§9) — stock Android, Android apps under Cycada, iOS apps under
// Cycada, and native iOS — and runs every table and figure against them.
package harness

import (
	"fmt"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
	"cycada/internal/core/system"
	"cycada/internal/gles/glesapi"
	"cycada/internal/graphics2d"
	"cycada/internal/ios/eagl"
	"cycada/internal/ios/iosys"
	"cycada/internal/jsvm"
	"cycada/internal/obs"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
	"cycada/internal/webkit"
	"cycada/internal/webkit/androidport"
	"cycada/internal/webkit/iosport"
	"cycada/internal/workloads/passmark"
)

// ConfigID names one of the evaluation's four system configurations.
type ConfigID string

// The four configurations of §9.
const (
	StockAndroid  ConfigID = "android"
	CycadaAndroid ConfigID = "cycada-android"
	CycadaIOS     ConfigID = "cycada-ios"
	NativeIOS     ConfigID = "ios"
)

// Configs returns all four configurations in the paper's order.
func Configs() []ConfigID {
	return []ConfigID{CycadaIOS, CycadaAndroid, NativeIOS, StockAndroid}
}

// FrameHistogram returns the configuration's per-frame present-latency
// histogram (frame-health telemetry) in the process-wide registry. The
// PassMark hosts observe one sample per Present into it; Fig6 renders the
// quantiles next to the FPS scores.
func FrameHistogram(id ConfigID) *obs.Histogram {
	return FrameHistogramIn(obs.DefaultHistograms, id)
}

// FrameHistogramIn resolves the configuration's frame histogram in a
// specific registry — the scoping hook the device farm uses so each stack's
// (or session's) frame health stays separable from its siblings'.
func FrameHistogramIn(hs *obs.Histograms, id ConfigID) *obs.Histogram {
	return hs.Histogram("frame-" + string(id))
}

// Device is a booted configuration with factories for each workload. Each
// workload boots its own process (and for Android PassMark sections, fresh
// processes per GLES version, since one Android process cannot hold two).
type Device struct {
	ID    ConfigID
	Label string

	Screen func() *gpu.Image

	// NewBrowser builds the platform browser (Safari / the Android browser)
	// in a fresh app process.
	NewBrowser func(jsOpts ...jsvm.Option) (*webkit.Browser, *kernel.Thread, error)
	// NewPassmarkHost builds the PassMark app environment.
	NewPassmarkHost func() (passmark.Host, error)
	// Variant is which PassMark app binary this configuration runs.
	Variant passmark.Variant
	// NullThread is a thread for kernel micro-benchmarks.
	NullThread *kernel.Thread

	// CycadaApp is set on CycadaIOS: the app whose profiler feeds
	// Figures 7-10. It is refreshed by NewBrowser/NewPassmarkHost.
	CycadaApp *system.IOSApp
}

// Boot creates a device for the given configuration.
func Boot(id ConfigID) (*Device, error) {
	switch id {
	case StockAndroid, CycadaAndroid:
		return bootAndroid(id)
	case CycadaIOS:
		return bootCycadaIOS()
	case NativeIOS:
		return bootNativeIOS()
	default:
		return nil, fmt.Errorf("harness: unknown config %q", id)
	}
}

func bootAndroid(id ConfigID) (*Device, error) {
	cfg := stack.Config{Platform: vclock.Nexus7()}
	label := "Android"
	if id == CycadaAndroid {
		cfg.Flavor = vclock.KernelCycada
		label = "Cycada Android"
	}
	sys := stack.New(cfg)
	nullUS, err := sys.NewUserspace(stack.UserConfig{Name: "lmbench"})
	if err != nil {
		return nil, err
	}
	d := &Device{
		ID:         id,
		Label:      label,
		Screen:     func() *gpu.Image { return sys.Flinger.Screen() },
		Variant:    passmark.VariantAndroid,
		NullThread: nullUS.Proc.Main(),
	}
	d.NewBrowser = func(jsOpts ...jsvm.Option) (*webkit.Browser, *kernel.Thread, error) {
		us, err := sys.NewUserspace(stack.UserConfig{Name: "browser"})
		if err != nil {
			return nil, nil, err
		}
		port, err := androidport.New(androidport.Config{
			Userspace: us, W: stack.ScreenW, H: stack.ScreenH, JSOptions: jsOpts,
		})
		if err != nil {
			return nil, nil, err
		}
		return webkit.NewBrowser(port), us.Proc.Main(), nil
	}
	d.NewPassmarkHost = func() (passmark.Host, error) {
		return &androidHost{sys: sys, frameHist: FrameHistogram(id)}, nil
	}
	return d, nil
}

func bootCycadaIOS() (*Device, error) {
	sys := system.New(system.Config{})
	nullApp, err := sys.NewIOSApp(system.AppConfig{Name: "lmbench"})
	if err != nil {
		return nil, err
	}
	d := &Device{
		ID:         CycadaIOS,
		Label:      "Cycada iOS",
		Screen:     func() *gpu.Image { return sys.Android.Flinger.Screen() },
		Variant:    passmark.VariantIOS,
		NullThread: nullApp.Main(),
	}
	d.NewBrowser = func(jsOpts ...jsvm.Option) (*webkit.Browser, *kernel.Thread, error) {
		app, err := sys.NewIOSApp(system.AppConfig{Name: "safari"})
		if err != nil {
			return nil, nil, err
		}
		d.CycadaApp = app
		port, err := iosport.New(iosport.Config{
			Proc:     app.Proc,
			EAGL:     app.EAGL,
			GL:       app.GL,
			Surfaces: app.Surfaces,
			NewLayer: app.NewLayer,
			W:        stack.ScreenW, H: stack.ScreenH,
			JSOptions: jsOpts,
		})
		if err != nil {
			return nil, nil, err
		}
		return webkit.NewBrowser(port), app.Main(), nil
	}
	d.NewPassmarkHost = func() (passmark.Host, error) {
		app, err := sys.NewIOSApp(system.AppConfig{Name: "passmark"})
		if err != nil {
			return nil, err
		}
		d.CycadaApp = app
		return &iosHost{
			t:         app.Main(),
			gl:        app.GL,
			eagl:      app.EAGL,
			newLayer:  app.NewLayer,
			cpuDraw:   app.Main().Costs().PerPixelCPUDrawIOS,
			frameHist: FrameHistogram(CycadaIOS),
		}, nil
	}
	return d, nil
}

func bootNativeIOS() (*Device, error) {
	sys := iosys.New(iosys.Config{})
	nullUS, err := sys.NewUserspace("lmbench")
	if err != nil {
		return nil, err
	}
	d := &Device{
		ID:         NativeIOS,
		Label:      "iOS",
		Screen:     func() *gpu.Image { return sys.Framebuffer.Screen() },
		Variant:    passmark.VariantIOS,
		NullThread: nullUS.Proc.Main(),
	}
	d.NewBrowser = func(jsOpts ...jsvm.Option) (*webkit.Browser, *kernel.Thread, error) {
		us, err := sys.NewUserspace("safari")
		if err != nil {
			return nil, nil, err
		}
		port, err := iosport.New(iosport.Config{
			Proc:     us.Proc,
			EAGL:     us.EAGL,
			GL:       us.GL,
			Surfaces: us.Surfaces,
			NewLayer: us.NewLayer,
			W:        iosys.ScreenW, H: iosys.ScreenH,
			JSOptions: jsOpts,
		})
		if err != nil {
			return nil, nil, err
		}
		return webkit.NewBrowser(port), us.Proc.Main(), nil
	}
	d.NewPassmarkHost = func() (passmark.Host, error) {
		us, err := sys.NewUserspace("passmark")
		if err != nil {
			return nil, err
		}
		return &iosHost{
			t:         us.Proc.Main(),
			gl:        us.GL,
			eagl:      us.EAGL,
			newLayer:  us.NewLayer,
			cpuDraw:   us.Proc.Main().Costs().PerPixelCPUDrawIOS,
			frameHist: FrameHistogram(NativeIOS),
		}, nil
	}
	return d, nil
}

// --- PassMark hosts ---

// iosHost runs PassMark's iOS app: EAGL contexts per section (DLR gives the
// Cycada configuration simultaneous GLES versions for free).
type iosHost struct {
	t         *kernel.Thread
	gl        *glesapi.GL
	eagl      *eagl.Lib
	newLayer  func(t *kernel.Thread, x, y, w, h int) (*eagl.CAEAGLLayer, error)
	cpuDraw   vclock.Duration
	frameHist *obs.Histogram // per-config present-latency samples

	ctx   *eagl.Context
	layer *eagl.CAEAGLLayer
	w, h  int

	blit blitState
}

func (h *iosHost) Thread() *kernel.Thread { return h.t }
func (h *iosHost) GL() *glesapi.GL        { return h.gl }

func (h *iosHost) Begin(version int) (int, int, error) {
	api := eagl.APIGLES2
	if version == 1 {
		api = eagl.APIGLES1
	}
	ctx, err := h.eagl.NewContext(h.t, api)
	if err != nil {
		return 0, 0, err
	}
	h.ctx = ctx
	if err := h.eagl.SetCurrentContext(h.t, ctx); err != nil {
		return 0, 0, err
	}
	h.w, h.h = 240, 160
	layer, err := h.newLayer(h.t, 0, 0, h.w, h.h)
	if err != nil {
		return 0, 0, err
	}
	h.layer = layer
	fbo := h.gl.GenFramebuffers(h.t, 1)
	h.gl.BindFramebuffer(h.t, fbo[0])
	rb := h.gl.GenRenderbuffers(h.t, 1)
	h.gl.BindRenderbuffer(h.t, rb[0])
	if err := ctx.RenderbufferStorageFromDrawable(h.t, layer); err != nil {
		return 0, 0, err
	}
	h.gl.FramebufferRenderbuffer(h.t, rb[0])
	h.blit = blitState{}
	return h.w, h.h, nil
}

func (h *iosHost) Present() error {
	start := h.t.VTime()
	err := h.ctx.PresentRenderbuffer(h.t)
	h.frameHist.Observe(h.t.TID(), h.t.VTime()-start)
	return err
}

func (h *iosHost) End() error {
	if err := h.eagl.SetCurrentContext(h.t, nil); err != nil {
		return err
	}
	return h.ctx.Release(h.t)
}

func (h *iosHost) NewCanvas(w, hh int) (*graphics2d.Canvas, error) {
	return graphics2d.New(gpu.NewImage(w, hh), h.cpuDraw), nil
}

func (h *iosHost) UploadCanvas(cv *graphics2d.Canvas) error {
	return uploadCanvas(h.t, h.gl, &h.blit, cv)
}

// androidHost runs PassMark's Android app. Each section gets a fresh process
// because one Android process cannot hold two GLES versions (§8) — the app
// restarts between 2D and 3D sections.
type androidHost struct {
	sys       *stack.System
	frameHist *obs.Histogram // per-config present-latency samples

	us      *stack.Userspace
	t       *kernel.Thread
	gl      *glesapi.GL
	eglSurf *egl.Surface
	blit    blitState
}

func (h *androidHost) Thread() *kernel.Thread { return h.t }
func (h *androidHost) GL() *glesapi.GL        { return h.gl }

func (h *androidHost) Begin(version int) (int, int, error) {
	us, err := h.sys.NewUserspace(stack.UserConfig{Name: "passmark"})
	if err != nil {
		return 0, 0, err
	}
	h.us = us
	h.t = us.Proc.Main()
	surf, err := us.EGL.CreateWindowSurface(h.t, 0, 0, 240, 160)
	if err != nil {
		return 0, 0, err
	}
	ctx, err := us.EGL.CreateContext(h.t, version, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := us.EGL.MakeCurrent(h.t, surf, ctx); err != nil {
		return 0, 0, err
	}
	gh, err := us.Linker.Dlopen(h.t, "libGLESv2_tegra.so")
	if err != nil {
		return 0, 0, err
	}
	h.gl = glesapi.New(us.Linker, gh)
	h.eglSurf = surf
	h.blit = blitState{}
	return 240, 160, nil
}

func (h *androidHost) Present() error {
	start := h.t.VTime()
	err := h.us.EGL.SwapBuffers(h.t, h.eglSurf)
	h.frameHist.Observe(h.t.TID(), h.t.VTime()-start)
	return err
}

func (h *androidHost) End() error {
	return h.us.EGL.DestroySurface(h.t, h.eglSurf)
}

func (h *androidHost) NewCanvas(w, hh int) (*graphics2d.Canvas, error) {
	return graphics2d.New(gpu.NewImage(w, hh), h.t.Costs().PerPixelCPUDraw), nil
}

func (h *androidHost) UploadCanvas(cv *graphics2d.Canvas) error {
	return uploadCanvas(h.t, h.gl, &h.blit, cv)
}
