package harness

import (
	"fmt"

	"cycada/internal/android/stack"
	"cycada/internal/core/system"
	"cycada/internal/gles/engine"
	"cycada/internal/graphics2d"
	"cycada/internal/ios/eagl"
	"cycada/internal/obs"
	"cycada/internal/replay"
	"cycada/internal/sim/gpu"
	"cycada/internal/workloads/passmark"
)

// Scenarios lists the recordable workloads, in the order cycadareplay
// documents them. Each boots a fresh Cycada iOS configuration, so recordings
// are deterministic: same scenario, same trace.
func Scenarios() []string {
	return []string{"passmark-2d", "passmark-3d", "passmark", "webkit-tiles"}
}

// RecordScenario boots the Cycada iOS configuration with a replay recorder
// attached to every bridge boundary, runs the named scenario, and returns
// the captured trace (including per-present screen checksums and the final
// composited frame).
func RecordScenario(name string) (*replay.Trace, error) {
	sys := system.New(system.Config{})
	app, err := sys.NewIOSApp(system.AppConfig{Name: "record-" + name})
	if err != nil {
		return nil, err
	}
	rec := replay.NewRecorder(replay.RecorderConfig{
		Label:    name,
		ScreenW:  stack.ScreenW,
		ScreenH:  stack.ScreenH,
		Checksum: sys.Android.Flinger.ScreenChecksum,
		Screen:   sys.Android.Flinger.Screen,
	})
	detach := replay.Attach(app, rec)
	sp := app.Main().TraceBegin(obs.CatReplay, "replay:record:"+name)
	err = RunScenarioApp(app, name)
	app.Main().TraceEnd(sp)
	detach()
	if err != nil {
		return nil, fmt.Errorf("record %s: %w", name, err)
	}
	return rec.Finish()
}

// RunScenarioApp drives the named scenario against an already-created iOS
// app process — the session body the device farm schedules onto its booted
// stacks (RecordScenario wraps it with a fresh system and a recorder).
func RunScenarioApp(app *system.IOSApp, name string) error {
	switch name {
	case "passmark-2d":
		return runPassmarkTests(app, []string{"Solid Vectors", "Image Rendering"})
	case "passmark-3d":
		return runPassmarkTests(app, []string{"Simple 3D", "Complex 3D"})
	case "passmark":
		return runPassmarkTests(app, passmark.TestNames())
	case "webkit-tiles":
		return runWebkitTiles(app)
	default:
		return fmt.Errorf("unknown scenario %q (have %v)", name, Scenarios())
	}
}

// recordFrames keeps golden traces small while still covering multi-frame
// state reuse (cached programs, retained textures).
const recordFrames = 2

func runPassmarkTests(app *system.IOSApp, tests []string) error {
	h := &iosHost{
		t:        app.Main(),
		gl:       app.GL,
		eagl:     app.EAGL,
		newLayer: app.NewLayer,
		cpuDraw:  app.Main().Costs().PerPixelCPUDrawIOS,
		// Scenario presents feed the Cycada iOS frame-health histogram of
		// whatever registry the app's kernel is scoped to — the process-wide
		// default for single-stack boots, a per-session registry under the
		// device farm.
		frameHist: FrameHistogramIn(app.Main().Histograms(), CycadaIOS),
	}
	defer passmark.ForgetPrograms(h)
	for _, test := range tests {
		if _, err := passmark.Run(h, passmark.VariantIOS, test, recordFrames); err != nil {
			return fmt.Errorf("passmark %s: %w", test, err)
		}
	}
	return nil
}

// runWebkitTiles mimics the iOS WebKit port's tile pipeline (iosport): tiles
// painted by CoreGraphics into locked IOSurfaces on a render thread, uploaded
// as textures, then a cross-thread context adoption and present from the main
// thread — which under Cycada exercises impersonation and the §6.2 lock
// dance, both of which replay must re-drive.
func runWebkitTiles(app *system.IOSApp) error {
	main := app.Main()
	render := app.Proc.NewThread("WebKitRender")
	gl := app.GL

	ctx, err := app.EAGL.NewContext(render, eagl.APIGLES2)
	if err != nil {
		return err
	}
	if err := app.EAGL.SetCurrentContext(render, ctx); err != nil {
		return err
	}
	layer, err := app.NewLayer(render, 0, 0, stack.ScreenW, stack.ScreenH)
	if err != nil {
		return err
	}
	fbo := gl.GenFramebuffers(render, 1)
	gl.BindFramebuffer(render, fbo[0])
	rb := gl.GenRenderbuffers(render, 1)
	gl.BindRenderbuffer(render, rb[0])
	if err := ctx.RenderbufferStorageFromDrawable(render, layer); err != nil {
		return err
	}
	gl.FramebufferRenderbuffer(render, rb[0])

	const tiles, tileSize = 4, 64
	texs := gl.GenTextures(render, tiles)
	for i, tex := range texs {
		surf, err := app.Surfaces.Create(render, tileSize, tileSize, gpu.FormatRGBA8888)
		if err != nil {
			return err
		}
		if err := app.Surfaces.Lock(render, surf); err != nil {
			return err
		}
		cv := graphics2d.New(surf.BaseAddress(), render.Costs().PerPixelCPUDrawIOS)
		cv.Clear(render, gpu.RGBA{R: uint8(40 * i), G: 96, B: 160, A: 255})
		cv.SetFill(gpu.RGBA{R: 240, G: uint8(60 * i), B: 32, A: 255})
		cv.FillRect(render, 8, 8, tileSize-8, tileSize-8)
		cv.DrawText(render, 6, 28, "tile", 8)
		if err := app.Surfaces.Unlock(render, surf); err != nil {
			return err
		}
		gl.BindTexture(render, tex)
		gl.TexImage2D(render, tileSize, tileSize, gpu.FormatRGBA8888, nil)
		gl.TexSubImage2D(render, 0, 0, tileSize, tileSize, gpu.FormatRGBA8888, surf.BaseAddress().Pix)
		if err := app.Surfaces.Release(render, surf); err != nil {
			return err
		}
	}

	// Cross-thread adoption: the main thread takes over the render thread's
	// context and presents (iOS liberality, impersonation under Cycada).
	if err := app.EAGL.SetCurrentContext(main, ctx); err != nil {
		return err
	}
	gl.ClearColor(main, 0.1, 0.2, 0.3, 1)
	gl.Clear(main, engine.ColorBufferBit)
	if err := ctx.PresentRenderbuffer(main); err != nil {
		return err
	}
	gl.DeleteTextures(main, texs) // the multi diplomat, coalesced via libEGLbridge
	if err := app.EAGL.SetCurrentContext(main, nil); err != nil {
		return err
	}
	if err := app.EAGL.SetCurrentContext(render, nil); err != nil {
		return err
	}
	return ctx.Release(render)
}
