package harness

import (
	"strings"
	"testing"

	"cycada/internal/workloads/acid"
	"cycada/internal/workloads/passmark"
	"cycada/internal/workloads/sunspider"
)

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"145", "142", "94", "285", "174", "33", "43"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"312", "15", "344", "17 total — 6 multi-diplomat, 10 from scratch, 1 unimplemented"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	out, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	// Shape assertions via the underlying bench.
	rows, err := DiplomaticCallBench(500)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r.Name] = r.Time.AsTime().Nanoseconds()
	}
	if byName["Standard Function"] >= 50 {
		t.Errorf("standard function = %dns, want ~9ns", byName["Standard Function"])
	}
	if byName["Diplomat"] < 600 || byName["Diplomat"] > 1100 {
		t.Errorf("diplomat = %dns, want ~816ns ballpark", byName["Diplomat"])
	}
	if byName["Diplomat + Pre/Post"] <= byName["Diplomat"] {
		t.Error("empty prelude/postlude should add a little overhead")
	}
	if byName["Diplomat + GL Pre/Post"] <= byName["Diplomat + Pre/Post"] {
		t.Error("GL prelude/postlude should cost more than empty ones")
	}
	// "A GLES diplomatic call costs almost the same as three system calls."
	if byName["Diplomat + GL Pre/Post"] > 4*305 {
		t.Errorf("GL diplomat = %dns, want < ~4 syscalls", byName["Diplomat + GL Pre/Post"])
	}
}

func TestSunSpiderShapeOnAllConfigs(t *testing.T) {
	// Boot each config and run the suite; Figure 5's shape: Cycada iOS is
	// several times slower than everything else (no JIT), Cycada Android ≈
	// Android, iOS ≈ Android.
	totals := map[ConfigID]float64{}
	for _, id := range Configs() {
		d, err := Boot(id)
		if err != nil {
			t.Fatal(err)
		}
		b, th, err := d.NewBrowser()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Load(sunspider.Page); err != nil {
			t.Fatal(err)
		}
		res, err := sunspider.RunInBrowser(b, th)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		totals[id] = float64(sunspider.Total(res))
	}
	base := totals[StockAndroid]
	cycIOS := totals[CycadaIOS] / base
	cycAnd := totals[CycadaAndroid] / base
	ios := totals[NativeIOS] / base
	t.Logf("normalized totals: cycada-ios=%.2f cycada-android=%.2f ios=%.2f", cycIOS, cycAnd, ios)
	if cycIOS < 2.5 {
		t.Errorf("Cycada iOS total = %.2fx, want >2.5x (paper: ~4.4x)", cycIOS)
	}
	if cycAnd > 1.5 {
		t.Errorf("Cycada Android total = %.2fx, want ~1x", cycAnd)
	}
	if ios > 2.0 {
		t.Errorf("iOS total = %.2fx, want similar to Android", ios)
	}
}

func TestPassmarkShapeOnAllConfigs(t *testing.T) {
	scores := map[ConfigID]map[string]float64{}
	for _, id := range Configs() {
		d, err := Boot(id)
		if err != nil {
			t.Fatal(err)
		}
		h, err := d.NewPassmarkHost()
		if err != nil {
			t.Fatal(err)
		}
		res, err := passmark.RunAll(h, d.Variant, 4)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		scores[id] = map[string]float64{}
		for _, r := range res {
			scores[id][r.Test] = r.Score
		}
	}
	norm := func(id ConfigID, test string) float64 {
		return scores[id][test] / scores[StockAndroid][test]
	}
	// Figure 6 shapes:
	// 2D: iOS (and Cycada iOS) noticeably worse than Android.
	for _, test := range []string{"Solid Vectors", "Image Filters"} {
		if n := norm(NativeIOS, test); n >= 1.0 {
			t.Errorf("iOS %s = %.2fx, want < 1 (iOS worse at 2D)", test, n)
		}
		if n := norm(CycadaIOS, test); n >= 1.0 {
			t.Errorf("Cycada iOS %s = %.2fx, want < 1", test, n)
		}
	}
	// Complex 3D: iOS noticeably better; Cycada iOS beats stock Android.
	if n := norm(NativeIOS, "Complex 3D"); n <= 1.0 {
		t.Errorf("iOS Complex 3D = %.2fx, want > 1", n)
	}
	if n := norm(CycadaIOS, "Complex 3D"); n <= 1.0 {
		t.Errorf("Cycada iOS Complex 3D = %.2fx, want > 1 (paper: +20%%)", n)
	}
	// Simple 3D: Cycada iOS pays the unoptimized present path.
	if simple, complex := norm(CycadaIOS, "Simple 3D"), norm(CycadaIOS, "Complex 3D"); simple >= complex {
		t.Errorf("Cycada iOS simple 3D (%.2f) should have more overhead than complex 3D (%.2f)", simple, complex)
	}
	// Cycada Android tracks stock Android.
	for _, test := range passmark.TestNames() {
		if n := norm(CycadaAndroid, test); n < 0.7 || n > 1.3 {
			t.Errorf("Cycada Android %s = %.2fx, want ~1", test, n)
		}
	}
	// Correlation claim: Cycada iOS relative to Android tracks iOS relative
	// to Android in direction for every test.
	for _, test := range passmark.TestNames() {
		ci, ni := norm(CycadaIOS, test), norm(NativeIOS, test)
		if (ci > 1) != (ni > 1) && ci != 1 && ni != 1 {
			t.Logf("note: %s direction differs (cycada %.2f vs ios %.2f)", test, ci, ni)
		}
	}
}

func TestFigProfilesIncludePaperFunctions(t *testing.T) {
	out, prof, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	if prof == nil {
		t.Fatal("no Cycada iOS profiler captured")
	}
	fig7 := FigProfile("Figure 7/9: SunSpider GLES profile", prof)
	t.Log("\n" + fig7)
	for _, fn := range []string{"glFlush", "aegl_bridge_draw_fbo_tex", "eglSwapBuffers", "glTexSubImage2D"} {
		if prof.Calls(fn) == 0 {
			t.Errorf("SunSpider profile missing %s", fn)
		}
	}
}

func TestAcidScores100OnCycadaAndMatchesIOS(t *testing.T) {
	// §9: Safari on Cycada passes with 100/100 and the final page matches
	// the reference rendering pixel for pixel.
	run := func(id ConfigID) *acid.Result {
		d, err := Boot(id)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := d.NewBrowser()
		if err != nil {
			t.Fatal(err)
		}
		res, err := acid.Run(b, func() uint32 { return d.Screen().Checksum() })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cyc := run(CycadaIOS)
	if cyc.Score != 100 {
		t.Fatalf("Cycada iOS Acid score = %d/100; failed: %v", cyc.Score, cyc.Failed)
	}
	nat := run(NativeIOS)
	if nat.Score != 100 {
		t.Fatalf("native iOS Acid score = %d/100; failed: %v", nat.Score, nat.Failed)
	}
	if cyc.FinalChecksum != nat.FinalChecksum {
		t.Fatalf("final page differs: cycada %#x vs ios %#x", cyc.FinalChecksum, nat.FinalChecksum)
	}
}
