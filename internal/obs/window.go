package obs

import (
	"math"
	"sort"
	"sync"
	"time"

	"cycada/internal/sim/vclock"
)

// Rolling-window aggregation (DESIGN.md §15). The histograms and counters
// are cumulative since boot, which is the right shape for a one-shot report
// but useless for watching a live farm: after an hour of traffic the
// since-boot P99 barely moves when the current minute regresses. A Windows
// tracks registries and, on every rotation, captures the delta of each
// series against the previous rotation into a fixed ring of per-interval
// slots. Queries merge the most recent slots covering a span (last 10s,
// last 60s) and answer with *current* percentiles and rates.
//
// Rotation is the only writer of window state and takes the Windows mutex;
// the tracked hot paths are never touched — a rotation reads the same atomic
// stripe totals a report would, so windowing adds zero cost to Observe/Inc.
// Samples are not an atomic cut across stripes (writers keep writing); the
// skew is at most the handful of observations in flight during a rotation
// and moves a sample into a neighboring interval at worst.

// WindowStats is the merged delta of one histogram over a query span.
// The zero value is a well-defined empty window: Count 0, every statistic 0,
// Rate 0 — idle intervals must never divide by zero or report garbage.
type WindowStats struct {
	// Count and Sum are the observations and total virtual time that landed
	// in the window.
	Count int64
	Sum   vclock.Duration
	// Span is the wall-clock width the window actually covers: query-span
	// rounded up to whole intervals, clamped to the rotations that exist.
	// Zero before the first rotation.
	Span time.Duration

	buckets [histBuckets]int64
}

// Avg returns the mean observed duration in the window (0 when empty).
func (s *WindowStats) Avg() vclock.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / vclock.Duration(s.Count)
}

// Rate returns observations per wall-clock second over the window (0 when
// the window is empty or covers no time yet).
func (s *WindowStats) Rate() float64 {
	if s.Count == 0 || s.Span <= 0 {
		return 0
	}
	return float64(s.Count) / s.Span.Seconds()
}

// Quantile returns an upper bound of the q-quantile of the window's
// observations, with the same log-bucket 2x bias as Histogram.Quantile.
// Deltas carry no exact max, so the bound clamps to the upper edge of the
// highest non-empty bucket. Returns 0 on an empty window.
func (s *WindowStats) Quantile(q float64) vclock.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for b, n := range s.buckets {
		seen += n
		if seen >= target {
			return bucketUpperEdge(b)
		}
	}
	return s.Max()
}

// P50 returns the median upper bound of the window.
func (s *WindowStats) P50() vclock.Duration { return s.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound of the window.
func (s *WindowStats) P95() vclock.Duration { return s.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound of the window.
func (s *WindowStats) P99() vclock.Duration { return s.Quantile(0.99) }

// Max returns the upper edge of the highest non-empty bucket — the same
// at-worst-2x overestimate the quantiles carry (an exact max cannot be
// recovered from deltas of a cumulative max). Returns 0 on an empty window.
func (s *WindowStats) Max() vclock.Duration {
	for b := histBuckets - 1; b >= 0; b-- {
		if s.buckets[b] > 0 {
			return bucketUpperEdge(b)
		}
	}
	return 0
}

// bucketUpperEdge is the largest duration bucket b holds (see bucketOf).
func bucketUpperEdge(b int) vclock.Duration {
	if b <= 0 {
		return 0
	}
	return vclock.Duration(1)<<uint(b) - 1
}

// CounterWindow is the delta of one counter over a query span.
type CounterWindow struct {
	Delta int64
	Span  time.Duration
}

// Rate returns increments per wall-clock second over the window.
func (c *CounterWindow) Rate() float64 {
	if c.Delta == 0 || c.Span <= 0 {
		return 0
	}
	return float64(c.Delta) / c.Span.Seconds()
}

// histWindow is one histogram series: the cumulative totals at the last
// rotation plus the ring of per-interval deltas.
type histWindow struct {
	prev histSample
	ring []histSample // indexed by rotation % slots
}

// ctrWindow is one counter series.
type ctrWindow struct {
	prev int64
	ring []int64
}

// Windows turns cumulative registries into rolling per-interval deltas.
// Track any number of Histograms and Counters registries; same-named series
// across registries are summed (the farm's per-device registries roll up
// into one farm-wide series). All methods are safe for concurrent use.
type Windows struct {
	interval time.Duration
	slots    int

	mu        sync.Mutex
	hists     []*Histograms
	ctrs      []*Counters
	hw        map[string]*histWindow
	cw        map[string]*ctrWindow
	rotations uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWindows creates a window set rotating every interval with slots
// intervals of history (interval <= 0 defaults to 1s, slots <= 0 to 60 —
// one minute of 1s deltas, covering the 10s and 60s query spans the
// telemetry server serves).
func NewWindows(interval time.Duration, slots int) *Windows {
	if interval <= 0 {
		interval = time.Second
	}
	if slots <= 0 {
		slots = 60
	}
	return &Windows{
		interval: interval,
		slots:    slots,
		hw:       map[string]*histWindow{},
		cw:       map[string]*ctrWindow{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the rotation interval.
func (w *Windows) Interval() time.Duration { return w.interval }

// Slots returns the ring depth (intervals of history kept).
func (w *Windows) Slots() int { return w.slots }

// Rotations returns how many rotations have happened.
func (w *Windows) Rotations() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotations
}

// Track adds a histogram registry. Series already carrying counts are primed
// — their cumulative totals become the baseline — so history from before
// tracking never floods the first interval as a rate spike.
func (w *Windows) Track(hs *Histograms) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hists = append(w.hists, hs)
	hs.Each(func(h *Histogram) {
		hw := w.histWindowLocked(h.Name())
		s := h.sample()
		hw.prev.add(s)
	})
}

// TrackCounters adds a counter registry, priming existing counts like Track.
func (w *Windows) TrackCounters(cs *Counters) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ctrs = append(w.ctrs, cs)
	cs.Each(func(c *Counter) {
		w.ctrWindowLocked(c.Name()).prev += c.Load()
	})
}

func (w *Windows) histWindowLocked(name string) *histWindow {
	hw := w.hw[name]
	if hw == nil {
		hw = &histWindow{ring: make([]histSample, w.slots)}
		w.hw[name] = hw
	}
	return hw
}

func (w *Windows) ctrWindowLocked(name string) *ctrWindow {
	cw := w.cw[name]
	if cw == nil {
		cw = &ctrWindow{ring: make([]int64, w.slots)}
		w.cw[name] = cw
	}
	return cw
}

// Rotate captures one interval: for every tracked series, the delta of its
// cumulative totals (summed across registries) against the previous rotation
// is pushed into the ring. Called by the Start goroutine on the interval;
// tests and single-shot reporters may call it directly.
func (w *Windows) Rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()

	cumH := map[string]histSample{}
	for _, hs := range w.hists {
		hs.Each(func(h *Histogram) {
			s := cumH[h.Name()]
			s.add(h.sample())
			cumH[h.Name()] = s
		})
	}
	cumC := map[string]int64{}
	for _, cs := range w.ctrs {
		cs.Each(func(c *Counter) { cumC[c.Name()] += c.Load() })
	}

	slot := int(w.rotations) % w.slots
	for name, cur := range cumH {
		hw := w.histWindowLocked(name)
		delta := cur
		delta.sub(hw.prev)
		hw.prev = cur
		hw.ring[slot] = delta
	}
	// Series that vanished (a tracked registry was reset) still age out:
	// write zero deltas and reset their baseline.
	for name, hw := range w.hw {
		if _, ok := cumH[name]; !ok {
			hw.prev = histSample{}
			hw.ring[slot] = histSample{}
		}
	}
	for name, cur := range cumC {
		cw := w.ctrWindowLocked(name)
		cw.ring[slot] = cur - cw.prev
		cw.prev = cur
	}
	for name, cw := range w.cw {
		if _, ok := cumC[name]; !ok {
			cw.prev = 0
			cw.ring[slot] = 0
		}
	}
	w.rotations++
}

// spanSlots converts a query span to a slot count: span rounded up to whole
// intervals, clamped to [1, min(slots, rotations)]. Returns 0 before the
// first rotation.
func (w *Windows) spanSlotsLocked(span time.Duration) int {
	if w.rotations == 0 {
		return 0
	}
	n := int(math.Ceil(float64(span) / float64(w.interval)))
	if n < 1 {
		n = 1
	}
	if n > w.slots {
		n = w.slots
	}
	if uint64(n) > w.rotations {
		n = int(w.rotations)
	}
	return n
}

// Hist returns the merged window of the named histogram over the last span
// of wall-clock time. ok is false when the series is unknown; an idle known
// series returns the zero-valued (safe) WindowStats.
func (w *Windows) Hist(name string, span time.Duration) (WindowStats, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	hw, ok := w.hw[name]
	if !ok {
		return WindowStats{}, false
	}
	return w.mergeLocked(hw, span), true
}

func (w *Windows) mergeLocked(hw *histWindow, span time.Duration) WindowStats {
	n := w.spanSlotsLocked(span)
	var ws WindowStats
	ws.Span = time.Duration(n) * w.interval
	for i := 0; i < n; i++ {
		slot := (int(w.rotations) - 1 - i + w.slots) % w.slots
		d := &hw.ring[slot]
		ws.Count += d.count
		ws.Sum += vclock.Duration(d.sum)
		for b := range ws.buckets {
			ws.buckets[b] += d.buckets[b]
		}
	}
	return ws
}

// Counter returns the delta window of the named counter over the last span.
func (w *Windows) Counter(name string, span time.Duration) (CounterWindow, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.counterLocked(name, span)
}

// EachHist calls fn with every known histogram series' window over span, in
// name order.
func (w *Windows) EachHist(span time.Duration, fn func(name string, ws WindowStats)) {
	w.mu.Lock()
	names := make([]string, 0, len(w.hw))
	for name := range w.hw {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := make([]WindowStats, len(names))
	for i, name := range names {
		stats[i] = w.mergeLocked(w.hw[name], span)
	}
	w.mu.Unlock()
	for i, name := range names {
		fn(name, stats[i])
	}
}

// EachCounter calls fn with every known counter series' window over span, in
// name order.
func (w *Windows) EachCounter(span time.Duration, fn func(name string, cw CounterWindow)) {
	w.mu.Lock()
	names := make([]string, 0, len(w.cw))
	for name := range w.cw {
		names = append(names, name)
	}
	sort.Strings(names)
	wins := make([]CounterWindow, len(names))
	for i, name := range names {
		wins[i], _ = w.counterLocked(name, span)
	}
	w.mu.Unlock()
	for i, name := range names {
		fn(name, wins[i])
	}
}

func (w *Windows) counterLocked(name string, span time.Duration) (CounterWindow, bool) {
	cw, ok := w.cw[name]
	if !ok {
		return CounterWindow{}, false
	}
	n := w.spanSlotsLocked(span)
	win := CounterWindow{Span: time.Duration(n) * w.interval}
	for i := 0; i < n; i++ {
		slot := (int(w.rotations) - 1 - i + w.slots) % w.slots
		win.Delta += cw.ring[slot]
	}
	return win, true
}

// Start begins rotating on the interval in a background goroutine.
// Idempotent; Stop ends it.
func (w *Windows) Start() {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			tick := time.NewTicker(w.interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					w.Rotate()
				case <-w.stop:
					return
				}
			}
		}()
	})
}

// Stop ends the rotation goroutine (if Start ran) and waits for it to exit.
// Idempotent; the window contents remain queryable after Stop.
func (w *Windows) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
	})
	select {
	case <-w.done:
	default:
		// Start never ran; nothing to wait for.
		w.startOnce.Do(func() { close(w.done) })
		<-w.done
	}
}
