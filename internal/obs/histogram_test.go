package obs

import (
	"strings"
	"sync"
	"testing"

	"cycada/internal/sim/vclock"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram("present")
	for _, d := range []vclock.Duration{100, 200, 300, 400} {
		h.Observe(int(d), d) // spread across stripes
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Max() != 400 {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Avg() != 250 {
		t.Fatalf("avg = %v", h.Avg())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram("q")
	for i := 1; i <= 1000; i++ {
		h.Observe(0, vclock.Duration(i))
	}
	// Log buckets overestimate by at most 2x and never exceed the max.
	if p50 := h.P50(); p50 < 500 || p50 > 1000 {
		t.Fatalf("p50 = %v, want within [500, 1000]", p50)
	}
	if p99 := h.P99(); p99 < 990 || p99 > 1000 {
		t.Fatalf("p99 = %v, want within [990, 1000]", p99)
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("q100 = %v, want the max", h.Quantile(1))
	}

	// A single observation: every quantile is that observation, clamped by Max.
	one := NewHistogram("one")
	one.Observe(0, 777)
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := one.Quantile(q); got != 777 {
			t.Fatalf("quantile(%v) = %v, want 777 (clamped to max)", q, got)
		}
	}
	if NewHistogram("empty").P99() != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestHistogramRegistryGate(t *testing.T) {
	hs := NewHistograms()
	h := hs.Histogram("gated")
	h.Observe(1, 50)
	if h.Count() != 0 {
		t.Fatalf("disabled registry recorded %d observations", h.Count())
	}
	hs.SetEnabled(true)
	h.Observe(1, 50)
	if h.Count() != 1 {
		t.Fatalf("enabled registry recorded %d observations", h.Count())
	}
	hs.SetEnabled(false)
	h.Observe(1, 50)
	if h.Count() != 1 {
		t.Fatalf("re-disabled registry recorded %d observations", h.Count())
	}
}

func TestHistogramParallelObserve(t *testing.T) {
	h := NewHistogram("parallel")
	var wg sync.WaitGroup
	const threads, per = 8, 1000
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.Observe(tid, vclock.Duration(i))
			}
		}(tid)
	}
	wg.Wait()
	if h.Count() != threads*per {
		t.Fatalf("count = %d, want %d", h.Count(), threads*per)
	}
	want := vclock.Duration(threads * per * (per + 1) / 2)
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != per {
		t.Fatalf("max = %v, want %v", h.Max(), per)
	}
}

func TestHistogramsConcurrentCreateSamePointer(t *testing.T) {
	hs := NewHistograms()
	const n = 16
	got := make(chan *Histogram, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got <- hs.Histogram("shared")
		}()
	}
	wg.Wait()
	close(got)
	first := <-got
	for h := range got {
		if h != first {
			t.Fatal("concurrent creation returned distinct histograms for one name")
		}
	}
	if lk, ok := hs.Lookup("shared"); !ok || lk != first {
		t.Fatal("Lookup did not return the created histogram")
	}
}

func TestHistogramsResetAndTextReport(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	h := hs.Histogram("egl-present")
	h.Observe(0, 2000)
	rep := hs.TextReport()
	for _, col := range []string{"avg-vt-us", "p50-vt-us", "p95-vt-us", "p99-vt-us", "max-vt-us", "egl-present"} {
		if !strings.Contains(rep, col) {
			t.Fatalf("report missing %q:\n%s", col, rep)
		}
	}
	hs.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("registry reset did not zero the histogram in place")
	}
	if h2 := hs.Histogram("egl-present"); h2 != h {
		t.Fatal("reset invalidated the cached pointer")
	}
}
