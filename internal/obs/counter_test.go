package obs

import (
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	cs := NewCounters()
	cs.Counter("b").Inc()
	cs.Counter("a").Add(3)
	cs.Counter("b").Inc()
	if got := cs.Counter("a").Load(); got != 3 {
		t.Errorf("a = %d, want 3", got)
	}
	if got := cs.Counter("b").Load(); got != 2 {
		t.Errorf("b = %d, want 2", got)
	}
	if _, ok := cs.Lookup("c"); ok {
		t.Errorf("Lookup created a counter")
	}
	if got, want := cs.String(), "a=3 b=2"; got != want {
		t.Errorf("String() = %q, want %q (name order)", got, want)
	}
	if got := NewCounters().String(); got != "none" {
		t.Errorf("empty String() = %q, want none", got)
	}
	sec := cs.Section()
	if len(sec.Rows) != 2 || sec.Rows[0].Key != "a" || sec.Rows[1].Key != "b" {
		t.Errorf("Section rows = %+v, want a then b", sec.Rows)
	}
}

// Concurrent first-use creation and increments land exactly once per event
// (run under -race by the tier-1 gate).
func TestCountersConcurrent(t *testing.T) {
	cs := NewCounters()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				cs.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := cs.Counter("shared").Load(); got != workers*each {
		t.Errorf("shared = %d, want %d", got, workers*each)
	}
}
