package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cycada/internal/sim/vclock"
)

// TextReport aggregates recorded spans per (category, name): call count,
// total virtual time and total wall time, largest virtual total first.
func (tr *Tracer) TextReport() string {
	type key struct{ cat, name string }
	type agg struct {
		count int
		vdur  vclock.Duration
		wdur  int64 // wall ns
	}
	sums := map[key]*agg{}
	for _, ev := range tr.Events() {
		k := key{ev.Cat, ev.Name}
		a, ok := sums[k]
		if !ok {
			a = &agg{}
			sums[k] = a
		}
		a.count++
		a.vdur += ev.VDur
		a.wdur += int64(ev.WDur)
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := sums[keys[i]], sums[keys[j]]
		if a.vdur != b.vdur {
			return a.vdur > b.vdur
		}
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-40s %8s %14s %12s %14s\n", "category", "span", "count", "total-vt-us", "avg-vt-us", "total-wall-us")
	for _, k := range keys {
		a := sums[k]
		fmt.Fprintf(&b, "%-14s %-40s %8d %14.1f %12.1f %14.1f\n",
			k.cat, k.name, a.count, a.vdur.Micros(),
			a.vdur.Micros()/float64(a.count), float64(a.wdur)/1e3)
	}
	if n := tr.Dropped(); n > 0 {
		fmt.Fprintf(&b, "(%d spans dropped at the event-buffer cap)\n", n)
	}
	return b.String()
}

// jsonEvent is the WriteJSON wire form of an Event.
type jsonEvent struct {
	Name     string `json:"name"`
	Cat      string `json:"cat"`
	PID      int    `json:"pid"`
	TID      int    `json:"tid"`
	VStartNS int64  `json:"vstart_ns"`
	VDurNS   int64  `json:"vdur_ns"`
	WStartNS int64  `json:"wstart_unix_ns"`
	WDurNS   int64  `json:"wdur_ns"`
}

// WriteJSON writes all events as one JSON object:
// {"events": [...], "dropped_events": N}.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	events := tr.Events()
	out := struct {
		Events  []jsonEvent `json:"events"`
		Dropped int64       `json:"dropped_events"`
	}{Events: make([]jsonEvent, 0, len(events)), Dropped: tr.Dropped()}
	for _, ev := range events {
		out.Events = append(out.Events, jsonEvent{
			Name:     ev.Name,
			Cat:      ev.Cat,
			PID:      ev.PID,
			TID:      ev.TID,
			VStartNS: int64(ev.VStart),
			VDurNS:   int64(ev.VDur),
			WStartNS: ev.WStart.UnixNano(),
			WDurNS:   int64(ev.WDur),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata events). Timestamps are microseconds; the
// timeline shown is virtual time, with wall time carried in args.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"` // nil for metadata events only
	Args map[string]any `json:"args,omitempty"`
}

// minChromeDur is the duration given to zero-length spans: Perfetto and
// chrome://tracing render a slice with dur 0 (or a missing dur field, which
// is what the old omitempty tag produced) as invisible, so instantaneous
// spans are clamped to one virtual nanosecond (0.001us).
const minChromeDur = 0.001

// WriteChromeTrace writes the Chrome trace_event JSON format: load the file
// in chrome://tracing or https://ui.perfetto.dev. The timeline axis is
// virtual time (the deterministic quantity every figure is built from); each
// slice carries its wall-clock duration in args.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := tr.Events()
	procs, threads := tr.names()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms"}

	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": procs[pid]},
		})
		tids := make([]int, 0, len(threads[pid]))
		for tid := range threads[pid] {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": threads[pid][tid]},
			})
		}
	}
	for _, ev := range events {
		dur := float64(ev.VDur) / 1e3
		if dur < minChromeDur {
			dur = minChromeDur
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			PID:  ev.PID,
			TID:  ev.TID,
			TS:   float64(ev.VStart) / 1e3,
			Dur:  &dur,
			Args: map[string]any{"wall_us": float64(ev.WDur) / 1e3},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
