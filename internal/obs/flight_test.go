package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"cycada/internal/sim/vclock"
)

func TestFlightRecordAndDumpOrder(t *testing.T) {
	f := NewFlightRecorder()
	f.Record(3, FlightSpan, CatEGL, "egl:present", 1500, 10)
	f.Record(7, FlightFault, CatFault, "egl:present_fault", 2, 20)
	f.Record(3, FlightErrno, CatSyscall, "set_persona", 22, 30)
	f.Record(3, FlightMark, CatEGL, "frame_deadline_miss", 9000, 40)

	d := f.Dump("test")
	if len(d.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			t.Fatalf("events not in ascending Seq order: %d then %d",
				d.Events[i-1].Seq, d.Events[i].Seq)
		}
	}
	if d.Writes != 4 || d.Overwritten != 0 {
		t.Fatalf("writes = %d overwritten = %d", d.Writes, d.Overwritten)
	}
	if !d.Contains("frame_deadline_miss") || d.Contains("no_such_event") {
		t.Fatalf("Contains misbehaved: %s", d)
	}
	ev := d.Events[1]
	if ev.TID != 7 || ev.Kind != FlightFault || ev.Cat != CatFault || ev.Code != 2 || ev.VT != 20 {
		t.Fatalf("event = %+v", ev)
	}
	if !strings.Contains(d.String(), "egl:present_fault") {
		t.Fatalf("text rendering missing event:\n%s", d)
	}
}

func TestFlightDisabledRecordsNothing(t *testing.T) {
	f := NewFlightRecorder()
	f.SetEnabled(false)
	f.Record(1, FlightSpan, CatEGL, "egl:present", 1, 1)
	if f.Writes() != 0 {
		t.Fatalf("disabled recorder wrote %d events", f.Writes())
	}
	f.SetEnabled(true)
	f.Record(1, FlightSpan, CatEGL, "egl:present", 1, 1)
	if f.Writes() != 1 {
		t.Fatalf("re-enabled recorder wrote %d events", f.Writes())
	}
}

func TestFlightRingOverwriteCounting(t *testing.T) {
	f := NewFlightRecorder()
	const n = flightRingSize + 44
	for i := 0; i < n; i++ {
		// Same TID: every write lands on one stripe's ring.
		f.Record(5, FlightSpan, CatDiplomat, "noop", int64(i), vclock.Duration(i))
	}
	if got := f.Writes(); got != n {
		t.Fatalf("writes = %d, want %d", got, n)
	}
	if got := f.Overwritten(); got != 44 {
		t.Fatalf("overwritten = %d, want 44", got)
	}
	d := f.Dump("overflow")
	if len(d.Events) != flightRingSize {
		t.Fatalf("dump kept %d events, want the ring size %d", len(d.Events), flightRingSize)
	}
	// The survivors are the most recent writes; the oldest 44 are gone.
	if min := d.Events[0].Seq; min != 45 {
		t.Fatalf("oldest surviving Seq = %d, want 45", min)
	}
}

func TestFlightDumpRacesWriters(t *testing.T) {
	f := NewFlightRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for tid := 0; tid < 8; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(tid, FlightSpan, CatEGL, "egl:present", int64(i), vclock.Duration(i))
			}
		}(tid)
	}
	for i := 0; i < 50; i++ {
		d := f.Dump("race")
		for j := 1; j < len(d.Events); j++ {
			if d.Events[j].Seq <= d.Events[j-1].Seq {
				t.Errorf("dump %d: out-of-order Seq %d then %d", i, d.Events[j-1].Seq, d.Events[j].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightAutoDumpWritesAndSuppresses(t *testing.T) {
	f := NewFlightRecorder()
	var buf bytes.Buffer
	f.SetOutput(&buf)
	f.Record(1, FlightMark, CatReplay, "chaos_invariant", 7, 0)

	for i := 0; i < maxWrittenDumps+2; i++ {
		d := f.AutoDump("chaos_invariant")
		if !d.Contains("chaos_invariant") {
			t.Fatalf("dump %d lost the triggering event", i)
		}
	}
	if got := f.Dumps(); got != maxWrittenDumps+2 {
		t.Fatalf("dump count = %d, want %d", got, maxWrittenDumps+2)
	}
	out := buf.String()
	if got := strings.Count(out, "== flight recorder dump: chaos_invariant"); got != maxWrittenDumps {
		t.Fatalf("full renderings = %d, want %d:\n%s", got, maxWrittenDumps, out)
	}
	if got := strings.Count(out, "rendering suppressed"); got != 2 {
		t.Fatalf("suppressed notes = %d, want 2:\n%s", got, out)
	}
}

func TestFlightReset(t *testing.T) {
	f := NewFlightRecorder()
	f.SetOutput(io.Discard)
	f.Record(1, FlightSpan, CatEGL, "egl:present", 1, 1)
	f.AutoDump("reset-test")
	f.Reset()
	if f.Writes() != 0 || f.Dumps() != 0 || len(f.Dump("empty").Events) != 0 {
		t.Fatalf("reset left state behind: writes=%d dumps=%d", f.Writes(), f.Dumps())
	}
}
