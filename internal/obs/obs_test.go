package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"cycada/internal/sim/vclock"
)

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New()
	sp := tr.Begin(1, 1, CatDiplomat, "noop", 0)
	if sp.Active() {
		t.Fatal("disabled tracer returned an active span")
	}
	sp.End(10)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Len())
	}
}

func TestSpanRecordsVirtualAndWallTime(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	sp := tr.Begin(1, 3, CatEGL, "present", 100)
	if !sp.Active() {
		t.Fatal("enabled tracer returned inert span")
	}
	sp.End(250)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	ev := evs[0]
	if ev.Name != "present" || ev.Cat != CatEGL || ev.PID != 1 || ev.TID != 3 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.VStart != 100 || ev.VDur != 150 {
		t.Fatalf("virtual times = %v + %v", ev.VStart, ev.VDur)
	}
	if ev.WDur < 0 {
		t.Fatalf("wall duration = %v", ev.WDur)
	}
}

func TestEventsOrderKeepsParentsFirst(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	parent := tr.Begin(1, 1, CatDiplomat, "parent", 0)
	child := tr.Begin(1, 1, CatDiplomat, "child", 0)
	child.End(0) // zero-duration child, recorded before parent
	parent.End(0)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Name != "parent" || evs[1].Name != "child" {
		t.Fatalf("order = %s, %s", evs[0].Name, evs[1].Name)
	}
}

func TestConcurrentSpansAndReset(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	const threads, per = 8, 200
	for tid := 1; tid <= threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Begin(1, tid, CatSyscall, "set_persona", vclock.Duration(i))
				sp.End(vclock.Duration(i + 1))
			}
		}(tid)
	}
	wg.Wait()
	if got := tr.Len(); got != threads*per {
		t.Fatalf("events = %d, want %d", got, threads*per)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	tr.NameProcess(0, "app")
	tr.NameThread(0, 1, "main")
	sp := tr.Begin(0, 1, CatDiplomat, "diplomat:glFlush", 1000)
	sp.End(3500)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var sawMeta, sawSlice bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			sawSlice = true
			if ev["name"] != "diplomat:glFlush" {
				t.Fatalf("slice name = %v", ev["name"])
			}
			if ev["ts"].(float64) != 1.0 || ev["dur"].(float64) != 2.5 {
				t.Fatalf("ts/dur = %v/%v", ev["ts"], ev["dur"])
			}
		}
	}
	if !sawMeta || !sawSlice {
		t.Fatalf("metadata=%v slice=%v", sawMeta, sawSlice)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	sp := tr.Begin(2, 7, CatDLR, "dlforce:libui_wrapper.so", 10)
	sp.End(40)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []jsonEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 1 || doc.Events[0].VDurNS != 30 || doc.Events[0].PID != 2 {
		t.Fatalf("events = %+v", doc.Events)
	}
}

func TestTextReportAggregates(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	for i := 0; i < 3; i++ {
		sp := tr.Begin(1, 1, CatSyscall, "locate_tls", vclock.Duration(i*100))
		sp.End(vclock.Duration(i*100 + 50))
	}
	rep := tr.TextReport()
	if !strings.Contains(rep, "locate_tls") || !strings.Contains(rep, "3") {
		t.Fatalf("report = %q", rep)
	}
}

func TestMetricStripesSum(t *testing.T) {
	ms := NewMetrics()
	m := ms.Metric("glDrawArrays")
	var wg sync.WaitGroup
	const threads, per = 8, 1000
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Record(tid, 2)
			}
		}(tid)
	}
	wg.Wait()
	if m.Calls() != threads*per {
		t.Fatalf("calls = %d", m.Calls())
	}
	if m.Total() != vclock.Duration(2*threads*per) {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestMetricsResetKeepsPointers(t *testing.T) {
	ms := NewMetrics()
	m := ms.Metric("x")
	m.Record(0, 5)
	ms.Reset()
	if m.Calls() != 0 || m.Total() != 0 {
		t.Fatal("reset did not zero")
	}
	if ms.Metric("x") != m {
		t.Fatal("reset invalidated the cached pointer")
	}
	m.Record(1, 7)
	if m.Calls() != 1 || m.Total() != 7 {
		t.Fatal("metric unusable after reset")
	}
}

func TestAllocPIDSpace(t *testing.T) {
	tr := New()
	if a, b := tr.AllocPIDSpace(), tr.AllocPIDSpace(); a != 0 || b != 1000 {
		t.Fatalf("pid spaces = %d, %d", a, b)
	}
}
