// Package obs is the observability layer of the simulation: hierarchical
// spans carrying both virtual time and wall time, and sharded low-contention
// metrics (metrics.go). It is always compiled in and default-off; the entire
// disabled cost of a span site is one atomic load.
//
// Spans never charge virtual time — enabling tracing cannot perturb any
// experiment, so every table and figure regenerates bit-for-bit with tracing
// on or off. The tracer records finished spans into per-thread stripes
// (striped by TID) so concurrent threads do not contend on one buffer.
//
// Exporters (export.go) render a text report, JSON, and the Chrome
// trace_event format consumed by chrome://tracing and Perfetto.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cycada/internal/sim/vclock"
)

// Span categories used across the system. Categories are free-form strings;
// these are the ones the core layers emit.
const (
	CatDiplomat      = "diplomat"
	CatSyscall       = "syscall"
	CatImpersonation = "impersonation"
	CatDLR           = "dlr"
	CatEGL           = "egl"
	CatHarness       = "harness"
	CatReplay        = "replay"
	CatFault         = "fault"
	CatBatch         = "batch"
)

// Event is one finished span.
type Event struct {
	Name string
	Cat  string
	PID  int
	TID  int
	// Seq orders events that share a start time: a parent span is always
	// begun before its children, so sorting ties by Seq keeps nesting valid.
	Seq    int64
	VStart vclock.Duration // virtual time at Begin (thread-local)
	VDur   vclock.Duration // virtual duration
	WStart time.Time       // wall clock at Begin
	WDur   time.Duration   // wall duration
}

// eventStripes must be a power of two; stripes are selected by TID.
const eventStripes = 16

// defaultEventCap bounds each stripe's event buffer: 16 stripes x 8192
// events caps a tracer at ~13MB however long a chaos soak runs. Spans past
// the cap are counted in Dropped and surfaced by the exporters.
const defaultEventCap = 8192

type eventStripe struct {
	mu     sync.Mutex
	events []Event
	_      [64]byte // keep stripes on separate cache lines
}

// Tracer collects spans. The zero value is not usable; use New. All methods
// are safe for concurrent use.
type Tracer struct {
	enabled  atomic.Bool
	seq      atomic.Int64
	pids     atomic.Int64 // PID-space allocator (AllocPIDSpace)
	eventCap atomic.Int64 // per-stripe buffer bound
	dropped  atomic.Int64 // spans discarded at the cap

	stripes [eventStripes]eventStripe

	nameMu      sync.Mutex
	procNames   map[int]string
	threadNames map[int]map[int]string // pid -> tid -> name
}

// New creates a disabled tracer.
func New() *Tracer {
	tr := &Tracer{
		procNames:   map[int]string{},
		threadNames: map[int]map[int]string{},
	}
	tr.eventCap.Store(defaultEventCap)
	return tr
}

// Default is the process-wide tracer kernels attach to unless configured with
// their own. It starts disabled.
var Default = New()

// SetEnabled turns span recording on or off. Metadata (process and thread
// names) is recorded regardless, so enabling mid-run still yields named rows.
func (tr *Tracer) SetEnabled(on bool) { tr.enabled.Store(on) }

// Enabled reports whether spans are being recorded. This is the single
// atomic load paid on every instrumented site while tracing is off.
func (tr *Tracer) Enabled() bool { return tr.enabled.Load() }

// SetEventCap bounds each of the tracer's event stripes to n events (the
// total buffer is eventStripes times that). Spans recorded past the cap are
// discarded and counted in Dropped. n <= 0 restores the default cap.
func (tr *Tracer) SetEventCap(n int) {
	if n <= 0 {
		n = defaultEventCap
	}
	tr.eventCap.Store(int64(n))
}

// Dropped reports how many spans were discarded because a stripe's event
// buffer hit its cap. A drained tracer (Reset) starts counting afresh.
func (tr *Tracer) Dropped() int64 { return tr.dropped.Load() }

// AllocPIDSpace reserves a disjoint PID range (multiples of 1000) so that
// several kernels sharing one tracer — the four harness configurations, say —
// export non-colliding process IDs.
func (tr *Tracer) AllocPIDSpace() int {
	return int(tr.pids.Add(1)-1) * 1000
}

// NameProcess attaches a display name to a PID (trace metadata).
func (tr *Tracer) NameProcess(pid int, name string) {
	tr.nameMu.Lock()
	defer tr.nameMu.Unlock()
	tr.procNames[pid] = name
}

// NameThread attaches a display name to a TID within a PID (trace metadata).
func (tr *Tracer) NameThread(pid, tid int, name string) {
	tr.nameMu.Lock()
	defer tr.nameMu.Unlock()
	m, ok := tr.threadNames[pid]
	if !ok {
		m = map[int]string{}
		tr.threadNames[pid] = m
	}
	m[tid] = name
}

// Span is an open span. The zero Span is inert: Active reports false and End
// is a no-op, so disabled call sites cost nothing beyond the Enabled check.
type Span struct {
	tr     *Tracer
	name   string
	cat    string
	pid    int
	tid    int
	seq    int64
	vstart vclock.Duration
	wstart time.Time
}

// Active reports whether the span will record on End.
func (s Span) Active() bool { return s.tr != nil }

// Begin opens a span. Callers pass the thread's own virtual time so the span
// measures exactly what the thread was charged. Returns the inert zero Span
// when the tracer is disabled.
func (tr *Tracer) Begin(pid, tid int, cat, name string, vnow vclock.Duration) Span {
	if !tr.enabled.Load() {
		return Span{}
	}
	return Span{
		tr:     tr,
		name:   name,
		cat:    cat,
		pid:    pid,
		tid:    tid,
		seq:    tr.seq.Add(1),
		vstart: vnow,
		wstart: time.Now(),
	}
}

// End finishes the span at the given virtual time and records it.
func (s Span) End(vnow vclock.Duration) {
	if s.tr == nil {
		return
	}
	ev := Event{
		Name:   s.name,
		Cat:    s.cat,
		PID:    s.pid,
		TID:    s.tid,
		Seq:    s.seq,
		VStart: s.vstart,
		VDur:   vnow - s.vstart,
		WStart: s.wstart,
		WDur:   time.Since(s.wstart),
	}
	s.tr.add(ev)
}

// AddEvent records a pre-built event directly, bypassing Begin/End and the
// enabled gate. Used by tests and importers that need deterministic event
// contents; instrumentation sites use spans.
func (tr *Tracer) AddEvent(ev Event) { tr.add(ev) }

// add appends to the event's stripe, honoring the buffer cap.
func (tr *Tracer) add(ev Event) {
	st := &tr.stripes[ev.TID&(eventStripes-1)]
	limit := int(tr.eventCap.Load())
	st.mu.Lock()
	if len(st.events) >= limit {
		st.mu.Unlock()
		tr.dropped.Add(1)
		return
	}
	st.events = append(st.events, ev)
	st.mu.Unlock()
}

// Len reports the number of recorded events.
func (tr *Tracer) Len() int {
	n := 0
	for i := range tr.stripes {
		st := &tr.stripes[i]
		st.mu.Lock()
		n += len(st.events)
		st.mu.Unlock()
	}
	return n
}

// Events returns all recorded spans merged across stripes, ordered by
// (PID, TID, virtual start, longest-first, begin sequence) — the order that
// keeps parent spans ahead of the children they enclose.
func (tr *Tracer) Events() []Event {
	var out []Event
	for i := range tr.stripes {
		st := &tr.stripes[i]
		st.mu.Lock()
		out = append(out, st.events...)
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.VStart != b.VStart {
			return a.VStart < b.VStart
		}
		if a.VDur != b.VDur {
			return a.VDur > b.VDur
		}
		return a.Seq < b.Seq
	})
	return out
}

// Reset drops all recorded events and the dropped-span count (names and the
// enabled state are kept).
func (tr *Tracer) Reset() {
	for i := range tr.stripes {
		st := &tr.stripes[i]
		st.mu.Lock()
		st.events = nil
		st.mu.Unlock()
	}
	tr.dropped.Store(0)
}

// names snapshots the metadata maps for the exporters.
func (tr *Tracer) names() (procs map[int]string, threads map[int]map[int]string) {
	tr.nameMu.Lock()
	defer tr.nameMu.Unlock()
	procs = make(map[int]string, len(tr.procNames))
	for pid, n := range tr.procNames {
		procs[pid] = n
	}
	threads = make(map[int]map[int]string, len(tr.threadNames))
	for pid, m := range tr.threadNames {
		tm := make(map[int]string, len(m))
		for tid, n := range m {
			tm[tid] = n
		}
		threads[pid] = tm
	}
	return procs, threads
}
