package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"cycada/internal/farm"
	"cycada/internal/obs"
)

// TestAttachFarmServesLiveHealth boots a small farm, attaches it, runs real
// sessions, and checks the three read paths a farm operator uses: device
// health in /healthz, per-device gauges and rolled-up windowed series in
// /metrics.
func TestAttachFarmServesLiveHealth(t *testing.T) {
	win := obs.NewWindows(time.Second, 8)
	s := serveTest(t, Options{Windows: win})
	f := farm.New(farm.Config{Devices: 2})
	defer f.Close()
	AttachFarm(s, f)

	for i := 0; i < 4; i++ {
		if _, err := f.Submit(farm.SessionSpec{
			Name:     fmt.Sprintf("tel-%d", i),
			Scenario: "passmark-2d",
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	f.Wait()
	win.Rotate()

	// /healthz: live device health from farm.Stats.
	code, body := get(t, s.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d\n%s", code, body)
	}
	var hb struct {
		Status string     `json:"status"`
		Detail farm.Stats `json:"detail"`
	}
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatalf("/healthz JSON: %v", err)
	}
	if hb.Status != "ok" {
		t.Fatalf("status = %q, want ok", hb.Status)
	}
	if len(hb.Detail.Devices) != 2 {
		t.Fatalf("healthz devices = %d, want 2", len(hb.Detail.Devices))
	}
	if hb.Detail.Completed != 4 {
		t.Fatalf("healthz completed = %d, want 4", hb.Detail.Completed)
	}
	for _, d := range hb.Detail.Devices {
		if d.State != "healthy" {
			t.Fatalf("device %d state = %q, want healthy", d.ID, d.State)
		}
	}

	// /metrics: device-state gauges and the farm-wide windowed present series.
	code, body = get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	samples, err := ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for dev := 0; dev < 2; dev++ {
		g, ok := FindOne(samples, "cycada_farm_device_state", map[string]string{
			"device": fmt.Sprintf("%d", dev), "state": "healthy",
		})
		if !ok || g.Value != 1 {
			t.Fatalf("device %d healthy gauge = %+v ok=%v, want 1", dev, g, ok)
		}
	}
	// The per-session registries were merged back into the device registries,
	// so the cumulative egl-present series must carry the sessions' frames.
	var frames float64
	for _, sm := range Find(samples, MetricHist+"_count") {
		if sm.Label("hist") == "egl-present" {
			frames += sm.Value
		}
	}
	if frames == 0 {
		t.Fatal("no egl-present frames visible in /metrics after 4 sessions")
	}
	// And the windowed roll-up (device registries summed) saw them too.
	ws, ok := FindOne(samples, MetricWindow, map[string]string{
		"hist": "egl-present", "stat": "p99", "window": "10s",
	})
	if !ok || ws.Value <= 0 {
		t.Fatalf("farm-wide windowed p99 = %+v ok=%v, want > 0", ws, ok)
	}
	// Farm wall-clock histograms were attached under reg="farm".
	if _, ok := FindOne(samples, MetricHist+"_count", map[string]string{
		"hist": farm.SessionRanHist, "reg": "farm",
	}); !ok {
		t.Fatalf("farm session-ran histogram missing from /metrics")
	}
}
