package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cycada/internal/obs"
)

func serveTest(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestMetricsGolden pins the exposition text byte-for-byte for a fixed set
// of registries: self-metrics, one counter registry, one histogram registry.
// Uptime and scrape count are passed in so the document is deterministic.
func TestMetricsGolden(t *testing.T) {
	s := serveTest(t, Options{})
	cs := obs.NewCounters()
	cs.Counter("drops").Add(3)
	s.AddCounters("farm", cs)
	hs := obs.NewHistograms()
	hs.SetEnabled(true)
	h := hs.Histogram("lat")
	h.Observe(0, 1000)
	h.Observe(0, 1000)
	h.Observe(0, 3000)
	s.AddHistograms("", hs)

	var buf bytes.Buffer
	s.WriteMetrics(&buf, 12.5, 3)

	want := `# HELP cycada_up 1 while the telemetry server is serving.
# TYPE cycada_up gauge
cycada_up 1
# HELP cycada_uptime_seconds Wall-clock seconds since the server started.
# TYPE cycada_uptime_seconds gauge
cycada_uptime_seconds 12.5
# HELP cycada_scrapes_total Scrapes served, including this one.
# TYPE cycada_scrapes_total counter
cycada_scrapes_total 3
# HELP cycada_events_total Duration-less health events by counter name and registry.
# TYPE cycada_events_total counter
cycada_events_total{ctr="drops",reg="farm"} 3
# HELP cycada_hist_vt_us Since-boot virtual-time distributions in microseconds, by histogram name and registry.
# TYPE cycada_hist_vt_us histogram
cycada_hist_vt_us_bucket{hist="lat",le="1.023"} 2
cycada_hist_vt_us_bucket{hist="lat",le="4.095"} 3
cycada_hist_vt_us_bucket{hist="lat",le="+Inf"} 3
cycada_hist_vt_us_sum{hist="lat"} 5
cycada_hist_vt_us_count{hist="lat"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The golden document must parse through our own validator.
	if _, err := ParseText(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("golden document does not parse: %v", err)
	}
}

// TestMetricsEndpoint scrapes the live /metrics endpoint and validates the
// document and its self-series.
func TestMetricsEndpoint(t *testing.T) {
	win := obs.NewWindows(time.Second, 8)
	s := serveTest(t, Options{Windows: win})
	hs := obs.NewHistograms()
	hs.SetEnabled(true)
	s.AddHistograms("dev0", hs)
	win.Track(hs)
	hs.Histogram("egl-present").Observe(0, 2000)
	win.Rotate()

	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	samples, err := ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if up, ok := FindOne(samples, MetricUp, nil); !ok || up.Value != 1 {
		t.Fatalf("cycada_up = %+v ok=%v, want 1", up, ok)
	}
	if c, ok := FindOne(samples, MetricHist+"_count", map[string]string{"hist": "egl-present", "reg": "dev0"}); !ok || c.Value != 1 {
		t.Fatalf("hist count sample = %+v ok=%v, want 1", c, ok)
	}
	if p99, ok := FindOne(samples, MetricWindow, map[string]string{"hist": "egl-present", "stat": "p99", "window": "10s"}); !ok || p99.Value <= 0 {
		t.Fatalf("windowed p99 sample = %+v ok=%v, want > 0", p99, ok)
	}
	// Scrape counter advances per scrape.
	_, body2 := get(t, s.URL()+"/metrics")
	s2, _ := ParseText(bytes.NewReader(body2))
	a, _ := FindOne(samples, MetricScrapes, nil)
	b, _ := FindOne(s2, MetricScrapes, nil)
	if b.Value != a.Value+1 {
		t.Fatalf("scrapes went %v -> %v, want +1", a.Value, b.Value)
	}
}

// TestHealthzAndSnapshot checks both JSON endpoints round-trip and that a
// degraded health verdict flips the status code.
func TestHealthzAndSnapshot(t *testing.T) {
	s := serveTest(t, Options{})
	code, body := get(t, s.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var hb healthzBody
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if hb.Status != "ok" {
		t.Fatalf("default status = %q, want ok", hb.Status)
	}

	s.SetHealth(func() (bool, any) { return false, map[string]int{"healthy_devices": 0} })
	code, body = get(t, s.URL()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status = %d, want 503", code)
	}
	if err := json.Unmarshal(body, &hb); err != nil || hb.Status != "degraded" {
		t.Fatalf("degraded body = %s (err %v)", body, err)
	}

	code, body = get(t, s.URL()+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status = %d", code)
	}
	var snap obs.SystemSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot is not a snapshot: %v", err)
	}
	if len(snap.Sections) == 0 {
		t.Fatal("/snapshot has no sections")
	}
}

// TestEventsStreamDeliversDumps subscribes to /events and checks a
// flight-recorder AutoDump arrives as one SSE event.
func TestEventsStreamDeliversDumps(t *testing.T) {
	s := serveTest(t, Options{})
	f := obs.NewFlightRecorder()
	f.SetOutput(io.Discard)
	s.AddFlight("dev3", f)

	resp, err := http.Get(s.URL() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// First line is the stream comment; read past it before triggering.
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ":") {
		t.Fatalf("stream preamble = %q err=%v", line, err)
	}

	f.Record(1, obs.FlightMark, "test", "boom", 7, 0)
	f.AutoDump("test-incident")

	type ev struct {
		Source string `json:"source"`
		Reason string `json:"reason"`
		Events int    `json:"events"`
	}
	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimSpace(line)
		}
	}()
	var data string
	for data == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before event arrived")
			}
			if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(line, "data: ")
			}
		case <-deadline:
			t.Fatal("no SSE event within 5s of AutoDump")
		}
	}
	var e ev
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		t.Fatalf("event payload is not JSON: %v (%q)", err, data)
	}
	if e.Source != "dev3" || e.Reason != "test-incident" || e.Events == 0 {
		t.Fatalf("event = %+v, want source dev3 reason test-incident events>0", e)
	}
}

// TestConcurrentScrapesVsHotPath races /metrics scrapes against hot-path
// Observe/Inc and window rotation; under -race this pins the lock-free
// scrape contract.
func TestConcurrentScrapesVsHotPath(t *testing.T) {
	win := obs.NewWindows(time.Millisecond, 16)
	s := serveTest(t, Options{Windows: win})
	hs := obs.NewHistograms()
	hs.SetEnabled(true)
	cs := obs.NewCounters()
	s.AddHistograms("hot", hs)
	s.AddCounters("hot", cs)
	win.Track(hs)
	win.TrackCounters(cs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			h := hs.Histogram("egl-present")
			c := cs.Counter("egl-present-retried")
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(stripe, 1500)
				c.Inc()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			win.Rotate()
		}
	}()
	for i := 0; i < 20; i++ {
		code, body := get(t, s.URL()+"/metrics")
		if code != http.StatusOK {
			t.Errorf("scrape %d: status %d", i, code)
			break
		}
		if _, err := ParseText(bytes.NewReader(body)); err != nil {
			t.Errorf("scrape %d does not parse: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestGaugesGroupedByFamily checks several gauge callbacks contributing to
// one family render under a single header and the document stays valid.
func TestGaugesGroupedByFamily(t *testing.T) {
	s := serveTest(t, Options{})
	s.AddGauges(func() []Gauge {
		return []Gauge{{Name: "cycada_farm_device_state", Labels: []Label{{"device", "0"}, {"state", "healthy"}}, Value: 1}}
	})
	s.AddGauges(func() []Gauge {
		return []Gauge{{Name: "cycada_farm_device_state", Labels: []Label{{"device", "1"}, {"state", "healthy"}}, Value: 0}}
	})
	var buf bytes.Buffer
	s.WriteMetrics(&buf, 1, 1)
	doc := buf.String()
	if got := strings.Count(doc, "# TYPE cycada_farm_device_state gauge"); got != 1 {
		t.Fatalf("family header appears %d times, want 1\n%s", got, doc)
	}
	samples, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("document does not parse: %v", err)
	}
	if got := len(Find(samples, "cycada_farm_device_state")); got != 2 {
		t.Fatalf("device_state series = %d, want 2", got)
	}
}

// TestParseTextRejectsMalformed exercises the validator's failure modes.
func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"1bad_name 1\n",
		"dup 1\ndup 1\n",
		`lab{x=unquoted} 1` + "\n",
		`lab{x="a",x="b"} 1` + "\n",
		"noval\n",
		"v{a=\"b\"} not-a-number\n",
		"# TYPE x wat\n",
	}
	for _, doc := range bad {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseText accepted malformed doc %q", doc)
		}
	}
	good := "# random comment\nx_total{a=\"with \\\"quotes\\\" and \\\\\"} 4.5 1700000000\ny 2\ny{l=\"v\"} +Inf\n"
	samples, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseText rejected valid doc: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	if samples[0].Labels["a"] != `with "quotes" and \` {
		t.Fatalf("unescaped label = %q", samples[0].Labels["a"])
	}
}

func ExampleServe() {
	s, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	fmt.Println("serving")
	// Output: serving
}
