package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// A minimal Prometheus text-format parser: enough to validate our own
// exposition in the CI smoke (scripts/promcheck) and to let cycadatop
// -connect read a remote /metrics without pulling in a client library.
// It accepts the subset the writer produces — HELP/TYPE comments, series
// lines with optional label sets and float values — and rejects malformed
// names, label syntax, duplicate series and unparsable values.

// Sample is one parsed series line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s *Sample) Label(k string) string { return s.Labels[k] }

// key renders the identity of the series (name plus sorted labels).
func (s *Sample) key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, s.Labels[k])
	}
	return b.String()
}

// ParseText parses an exposition document into its samples. Returns an error
// on the first malformed line or duplicate series.
func ParseText(r io.Reader) ([]Sample, error) {
	var samples []Sample
	seen := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		k := s.key()
		if prev, dup := seen[k]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineno, k, prev)
		}
		seen[k] = lineno
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// Find returns the samples of one metric family, in document order.
func Find(samples []Sample, name string) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// FindOne returns the single sample matching name and every given label.
func FindOne(samples []Sample, name string, labels map[string]string) (Sample, bool) {
outer:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s, true
	}
	return Sample{}, false
}

// checkComment validates a # line: HELP and TYPE must carry a metric name,
// TYPE a known type; any other comment passes.
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("series line %q has no value", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("series %q has no value", s.Name)
	}
	// A trailing timestamp is legal in the format; we never emit one but
	// tolerate it.
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("series %q: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// parseLabels parses a {k="v",...} block starting at text[0]=='{', filling
// out and returning the index one past the closing brace.
func parseLabels(text string, out map[string]string) (int, error) {
	i := 1
	for {
		// Closing brace (possibly after a trailing comma).
		for i < len(text) && (text[i] == ' ' || text[i] == ',') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(text) && text[i] != '=' {
			i++
		}
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label set %q", text)
		}
		name := strings.TrimSpace(text[start:i])
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var v strings.Builder
		for {
			if i >= len(text) {
				return 0, fmt.Errorf("unterminated value for label %q", name)
			}
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, fmt.Errorf("dangling escape in label %q", name)
				}
				switch text[i+1] {
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				case 'n':
					v.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %q", text[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			v.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = v.String()
	}
}
