package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cycada/internal/obs"
)

// Options configures a Server. The zero value is usable: a server with no
// registries serves self-metrics, the process-wide snapshot, and an empty
// event stream.
type Options struct {
	// Windows, when set, adds rolling-window series (current P50/P95/P99 and
	// rates over Spans) to /metrics. The server does not Start or Stop it —
	// rotation cadence belongs to whoever owns the registries.
	Windows *obs.Windows
	// Spans are the query spans the windowed series cover. Default 10s, 60s.
	Spans []time.Duration
	// Snapshot produces the /snapshot payload. Default obs.Snapshot (the
	// process-wide source registry).
	Snapshot func() *obs.SystemSnapshot
}

// Gauge is one instantaneous sample an AddGauges callback contributes.
type Gauge struct {
	Name   string // metric family, e.g. "cycada_farm_queue_depth"
	Help   string // HELP text; first contributor of a family wins
	Labels []Label
	Value  float64
}

// Label is one exported key/value pair of a Gauge.
type Label struct {
	Key, Value string
}

// HealthFunc produces the /healthz verdict: ok selects the HTTP status
// (200/503) and detail is marshaled into the response.
type HealthFunc func() (ok bool, detail any)

// Server is the telemetry exposition server. All methods are safe for
// concurrent use; registries may be added while scrapes are in flight.
type Server struct {
	opts    Options
	ln      net.Listener
	hs      *http.Server
	started time.Time
	scrapes atomic.Int64

	mu       sync.Mutex
	ctrRegs  []namedCounters
	histRegs []namedHistograms
	gauges   []func() []Gauge
	health   HealthFunc
	removers []func()
	subs     map[int]chan []byte
	nextSub  int
	flights  []flightSource
}

type namedCounters struct {
	reg string
	cs  *obs.Counters
}

type namedHistograms struct {
	reg string
	hs  *obs.Histograms
}

type flightSource struct {
	src   string
	dumps *atomic.Int64
}

// Serve starts a telemetry server on addr ("host:port"; port 0 picks a free
// one — read it back with Addr). The listener is bound synchronously, so a
// non-nil error means nothing is serving.
func Serve(addr string, opts Options) (*Server, error) {
	if opts.Snapshot == nil {
		opts.Snapshot = obs.Snapshot
	}
	if len(opts.Spans) == 0 {
		opts.Spans = []time.Duration{10 * time.Second, 60 * time.Second}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		opts:    opts,
		ln:      ln,
		started: time.Now(),
		subs:    map[int]chan []byte{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/", s.handleIndex)
	s.hs = &http.Server{Handler: mux}
	go s.hs.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Windows returns the window set the server exports, nil when none.
func (s *Server) Windows() *obs.Windows { return s.opts.Windows }

// Close stops serving and detaches every flight-recorder hook. In-flight
// scrapes are aborted; /events subscribers see their streams end.
func (s *Server) Close() error {
	s.mu.Lock()
	removers := s.removers
	s.removers = nil
	s.mu.Unlock()
	for _, rm := range removers {
		rm()
	}
	return s.hs.Close()
}

// AddCounters exports a counter registry. reg becomes the series' reg label
// ("" for the process-default registry, "dev0" for a farm slot).
func (s *Server) AddCounters(reg string, cs *obs.Counters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrRegs = append(s.ctrRegs, namedCounters{reg, cs})
}

// AddHistograms exports a histogram registry under the given reg label.
func (s *Server) AddHistograms(reg string, hs *obs.Histograms) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.histRegs = append(s.histRegs, namedHistograms{reg, hs})
}

// AddGauges registers a callback polled at scrape time for instantaneous
// values (farm device health, queue depths).
func (s *Server) AddGauges(fn func() []Gauge) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges = append(s.gauges, fn)
}

// SetHealth installs the /healthz verdict function (nil restores the
// always-ok default).
func (s *Server) SetHealth(fn HealthFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health = fn
}

// AddFlight subscribes the /events stream to a flight recorder's automatic
// dumps: every AutoDump (panic isolation, watchdog timeout, quarantine,
// frame deadline miss) becomes one SSE event tagged with src. The hook is
// detached on Close.
func (s *Server) AddFlight(src string, f *obs.FlightRecorder) {
	dumps := new(atomic.Int64)
	remove := f.AddDumpHook(func(d *obs.FlightDump) {
		dumps.Add(1)
		s.broadcast(src, d)
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removers = append(s.removers, remove)
	s.flights = append(s.flights, flightSource{src, dumps})
}

// --- /metrics ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n := s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w, time.Since(s.started).Seconds(), n)
}

// WriteMetrics renders the full exposition document. Exported with explicit
// uptime/scrape values so the golden test renders deterministic text.
func (s *Server) WriteMetrics(w io.Writer, uptimeSeconds float64, scrapes int64) {
	s.mu.Lock()
	ctrRegs := append([]namedCounters(nil), s.ctrRegs...)
	histRegs := append([]namedHistograms(nil), s.histRegs...)
	gauges := append([]func() []Gauge(nil), s.gauges...)
	flights := append([]flightSource(nil), s.flights...)
	s.mu.Unlock()

	p := newPromWriter(w)

	p.family(MetricUp, "gauge", "1 while the telemetry server is serving.")
	p.sample(MetricUp, nil, 1)
	p.family(MetricUptime, "gauge", "Wall-clock seconds since the server started.")
	p.sample(MetricUptime, nil, uptimeSeconds)
	p.family(MetricScrapes, "counter", "Scrapes served, including this one.")
	p.sample(MetricScrapes, nil, float64(scrapes))

	if len(flights) > 0 {
		p.family(MetricFlightDumps, "counter", "Flight-recorder auto-dumps seen per source since attach.")
		for _, fs := range flights {
			p.sample(MetricFlightDumps, []label{{"src", fs.src}}, float64(fs.dumps.Load()))
		}
	}

	for _, nc := range ctrRegs {
		nc := nc
		nc.cs.Each(func(c *obs.Counter) {
			p.family(MetricEvents, "counter", "Duration-less health events by counter name and registry.")
			p.sample(MetricEvents, []label{{"ctr", c.Name()}, {"reg", nc.reg}}, float64(c.Load()))
		})
	}

	for _, nh := range histRegs {
		nh := nh
		nh.hs.Each(func(h *obs.Histogram) {
			p.family(MetricHist, "histogram", "Since-boot virtual-time distributions in microseconds, by histogram name and registry.")
			writeHistogram(p, h, []label{{"hist", h.Name()}, {"reg", nh.reg}})
		})
	}

	if win := s.opts.Windows; win != nil {
		for _, span := range s.opts.Spans {
			sl := spanLabel(span)
			win.EachHist(span, func(name string, ws obs.WindowStats) {
				p.family(MetricWindow, "gauge", "Rolling-window virtual-time statistics in microseconds (see the stat and window labels).")
				for _, st := range []struct {
					stat string
					v    float64
				}{
					{"avg", ws.Avg().Micros()},
					{"p50", ws.P50().Micros()},
					{"p95", ws.P95().Micros()},
					{"p99", ws.P99().Micros()},
					{"max", ws.Max().Micros()},
				} {
					p.sample(MetricWindow, []label{{"hist", name}, {"stat", st.stat}, {"window", sl}}, st.v)
				}
				p.family(MetricWindowRate, "gauge", "Rolling-window observations per second.")
				p.sample(MetricWindowRate, []label{{"hist", name}, {"window", sl}}, ws.Rate())
			})
			win.EachCounter(span, func(name string, cw obs.CounterWindow) {
				p.family(MetricEventDelta, "gauge", "Rolling-window counter increments.")
				p.sample(MetricEventDelta, []label{{"ctr", name}, {"window", sl}}, float64(cw.Delta))
				p.family(MetricEventRate, "gauge", "Rolling-window counter increments per second.")
				p.sample(MetricEventRate, []label{{"ctr", name}, {"window", sl}}, cw.Rate())
			})
		}
	}

	// Custom gauges last, grouped by family so HELP/TYPE precede every series
	// even when several callbacks contribute to one family.
	byFamily := map[string][]Gauge{}
	var order []string
	for _, fn := range gauges {
		for _, g := range fn() {
			if _, ok := byFamily[g.Name]; !ok {
				order = append(order, g.Name)
			}
			byFamily[g.Name] = append(byFamily[g.Name], g)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		for i, g := range byFamily[name] {
			if i == 0 {
				help := g.Help
				if help == "" {
					help = "Instantaneous gauge."
				}
				p.family(sanitizeName(name), "gauge", help)
			}
			ls := make([]label, len(g.Labels))
			for j, l := range g.Labels {
				ls[j] = label{l.Key, l.Value}
			}
			p.sample(sanitizeName(name), ls, g.Value)
		}
	}
}

// spanLabel renders a query span as a window label ("10s", "60s").
func spanLabel(d time.Duration) string {
	return fmt.Sprintf("%gs", d.Seconds())
}

// --- /snapshot and /healthz ---

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.opts.Snapshot().WriteJSON(w)
}

// healthzBody is the /healthz response shape.
type healthzBody struct {
	Status        string  `json:"status"` // "ok" | "degraded"
	UptimeSeconds float64 `json:"uptime_seconds"`
	Scrapes       int64   `json:"scrapes"`
	Detail        any     `json:"detail,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	health := s.health
	s.mu.Unlock()
	ok, detail := true, any(nil)
	if health != nil {
		ok, detail = health()
	}
	body := healthzBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Scrapes:       s.scrapes.Load(),
		Detail:        detail,
	}
	code := http.StatusOK
	if !ok {
		body.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "cycada telemetry\n/metrics\n/snapshot\n/healthz\n/events\n")
}

// --- /events (SSE) ---

// eventBody is the data payload of one SSE incident event.
type eventBody struct {
	Source      string `json:"source"` // AddFlight src tag
	Reason      string `json:"reason"`
	Events      int    `json:"events"` // events captured in the dump
	Writes      uint64 `json:"writes"`
	Overwritten uint64 `json:"overwritten"`
}

// broadcast fans a dump out to every /events subscriber. Slow subscribers
// drop events rather than block the dumping goroutine — AutoDump runs on
// failure paths that must never stall on a stuck TCP connection.
func (s *Server) broadcast(src string, d *obs.FlightDump) {
	data, err := json.Marshal(eventBody{
		Source:      src,
		Reason:      d.Reason,
		Events:      len(d.Events),
		Writes:      d.Writes,
		Overwritten: d.Overwritten,
	})
	if err != nil {
		return
	}
	msg := []byte("event: flightdump\ndata: " + string(data) + "\n\n")
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- msg:
		default:
		}
	}
}

func (s *Server) subscribe() (int, chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	ch := make(chan []byte, 64)
	s.subs[id] = ch
	return id, ch
}

func (s *Server) unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	id, ch := s.subscribe()
	defer s.unsubscribe(id)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": cycada flight-recorder incident stream\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case msg := <-ch:
			if _, err := w.Write(msg); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
