package telemetry

import (
	"fmt"

	"cycada/internal/farm"
	"cycada/internal/obs"
)

// AttachFarm wires a device farm into a telemetry server: the farm's
// scheduler counters and wall-clock histograms, every device's frame-health
// registries and flight recorder, per-device health gauges, and a /healthz
// verdict that degrades when no device can run sessions. When the server has
// a window set, every registry is tracked so the windowed series cover the
// whole farm (same-named device series sum into one farm-wide window).
func AttachFarm(srv *Server, f *farm.Farm) {
	srv.AddCounters("farm", f.Counters())
	srv.AddHistograms("farm", f.Histograms())
	win := srv.Windows()
	if win != nil {
		win.TrackCounters(f.Counters())
		win.Track(f.Histograms())
	}
	for i := 0; i < f.Devices(); i++ {
		d := f.Device(i)
		reg := fmt.Sprintf("dev%d", d.ID)
		srv.AddHistograms(reg, d.Hists)
		srv.AddCounters(reg, d.Ctrs)
		srv.AddFlight(reg, d.Flight)
		if win != nil {
			win.Track(d.Hists)
			win.TrackCounters(d.Ctrs)
		}
	}
	srv.AddGauges(func() []Gauge { return farmGauges(f) })
	srv.SetHealth(func() (bool, any) {
		st := f.Stats()
		healthy := 0
		for _, d := range st.Devices {
			if d.State == "healthy" {
				healthy++
			}
		}
		return healthy > 0, st
	})
}

// farmGauges renders one scrape's worth of farm health gauges.
func farmGauges(f *farm.Farm) []Gauge {
	st := f.Stats()
	gs := []Gauge{
		{Name: "cycada_farm_queue_depth", Help: "Admitted-but-not-running sessions across the farm.", Value: float64(st.QueueDepth)},
		{Name: "cycada_farm_in_flight", Help: "Session bodies executing right now.", Value: float64(st.InFlight)},
		{Name: "cycada_farm_backlog", Help: "Admitted sessions with no healthy device yet.", Value: float64(st.Backlog)},
		{Name: "cycada_farm_sessions_submitted", Help: "Sessions admitted since boot.", Value: float64(st.Submitted)},
		{Name: "cycada_farm_sessions_completed", Help: "Sessions finished successfully since boot.", Value: float64(st.Completed)},
		{Name: "cycada_farm_sessions_failed", Help: "Sessions finished in error since boot.", Value: float64(st.Failed)},
	}
	for _, d := range st.Devices {
		dev := fmt.Sprintf("%d", d.ID)
		for _, state := range []string{"healthy", "quarantined", "retired"} {
			v := 0.0
			if d.State == state {
				v = 1
			}
			gs = append(gs, Gauge{
				Name:   "cycada_farm_device_state",
				Help:   "1 for the device's current health state, 0 otherwise.",
				Labels: []Label{{"device", dev}, {"state", state}},
				Value:  v,
			})
		}
		gs = append(gs,
			Gauge{Name: "cycada_farm_device_sessions", Help: "Attempts finished on the device slot.", Labels: []Label{{"device", dev}}, Value: float64(d.Sessions)},
			Gauge{Name: "cycada_farm_device_failures", Help: "Failed attempts on the device slot.", Labels: []Label{{"device", dev}}, Value: float64(d.Failures)},
			Gauge{Name: "cycada_farm_device_reboots", Help: "Fresh stacks booted into the slot.", Labels: []Label{{"device", dev}}, Value: float64(d.Reboots)},
			Gauge{Name: "cycada_farm_device_queued", Help: "Sessions waiting in the slot's queue.", Labels: []Label{{"device", dev}}, Value: float64(d.Queued)},
		)
	}
	return gs
}

// AttachDefaults exports the process-wide default registries (what a
// single-stack tool like cycadareplay records into) under the empty reg
// label, tracks them in the server's window set, and subscribes the event
// stream to the default flight recorder.
func AttachDefaults(srv *Server) {
	srv.AddCounters("", obs.DefaultCounters)
	srv.AddHistograms("", obs.DefaultHistograms)
	srv.AddFlight("default", obs.DefaultFlight)
	if win := srv.Windows(); win != nil {
		win.Track(obs.DefaultHistograms)
		win.TrackCounters(obs.DefaultCounters)
	}
}
