// Package telemetry is the exposition plane of the observability stack
// (DESIGN.md §15): an embeddable HTTP server publishing the process's
// counters, histograms and rolling windows in Prometheus text format
// (/metrics), the live snapshot registry as JSON (/snapshot, /healthz), and
// flight-recorder incident dumps as a Server-Sent-Events stream (/events).
//
// The server only ever *reads* the same atomic totals a one-shot report
// would; scraping adds nothing to the Observe/Inc hot paths.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"cycada/internal/obs"
	"cycada/internal/sim/vclock"
)

// Metric family names. Values measured in virtual time carry the _vt_us
// marker: the simulator's nanoseconds are virtual, and µs is the natural
// magnitude of the frame-health distributions.
const (
	MetricUp          = "cycada_up"
	MetricUptime      = "cycada_uptime_seconds"
	MetricScrapes     = "cycada_scrapes_total"
	MetricEvents      = "cycada_events_total"        // counter registries; labels ctr, reg
	MetricHist        = "cycada_hist_vt_us"          // cumulative histograms; labels hist, reg
	MetricWindow      = "cycada_window_vt_us"        // windowed stats; labels hist, stat, window
	MetricWindowRate  = "cycada_window_rate"         // windowed observations/sec; labels hist, window
	MetricEventRate   = "cycada_window_events_rate"  // windowed counter rate; labels ctr, window
	MetricEventDelta  = "cycada_window_events_delta" // windowed counter delta; labels ctr, window
	MetricFlightDumps = "cycada_flight_dumps_total"  // auto-dumps seen; label src
)

// sanitizeName maps an arbitrary series name onto the Prometheus metric/label
// name alphabet [a-zA-Z0-9_:] ("egl-present" → "egl_present" when used as a
// name; label *values* keep the raw name instead, which is why the families
// above put series names in labels).
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// label is one key=value pair of a series.
type label struct {
	k, v string
}

// renderLabels renders a label set as {k="v",...}; empty set renders "".
// Pairs with an empty value are dropped (the reg label on the default
// registry), and the rest keep their given order — callers list them in
// a fixed order so series text is deterministic.
func renderLabels(labels []label) string {
	var b strings.Builder
	for _, l := range labels {
		if l.v == "" {
			continue
		}
		if b.Len() == 0 {
			b.WriteByte('{')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitizeName(l.k), escapeLabel(l.v))
	}
	if b.Len() > 0 {
		b.WriteByte('}')
	}
	return b.String()
}

// promWriter emits exposition text, tracking which families already carry
// their HELP/TYPE header so several registries can contribute series to one
// family.
type promWriter struct {
	w      io.Writer
	headed map[string]bool
	err    error
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, headed: map[string]bool{}}
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP/TYPE header once per metric family.
func (p *promWriter) family(name, typ, help string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one series line.
func (p *promWriter) sample(name string, labels []label, v float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(v))
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram renders one cumulative histogram as a Prometheus histogram:
// cumulative _bucket series with µs le edges, then _sum (µs) and _count.
// Empty log2 buckets are skipped (48 edges per series would be noise); the
// mandatory +Inf bucket is always present and equals _count.
func writeHistogram(p *promWriter, h *obs.Histogram, labels []label) {
	var cum int64
	h.Buckets(func(upper vclock.Duration, count int64) {
		cum += count
		if count == 0 {
			return
		}
		le := append(append([]label{}, labels...), label{"le", formatValue(upper.Micros())})
		p.sample(MetricHist+"_bucket", le, float64(cum))
	})
	inf := append(append([]label{}, labels...), label{"le", "+Inf"})
	p.sample(MetricHist+"_bucket", inf, float64(cum))
	p.sample(MetricHist+"_sum", labels, h.Sum().Micros())
	p.sample(MetricHist+"_count", labels, float64(h.Count()))
}
