package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cycada/internal/sim/vclock"
)

// TestChromeTraceGolden pins the exact Chrome trace_event output for a
// deterministic event set. In particular it guards the dur-field regression:
// zero-duration spans must carry an explicit "dur" (clamped to 0.001us), not
// an omitted field that chrome://tracing renders as an invisible slice.
func TestChromeTraceGolden(t *testing.T) {
	tr := New()
	tr.NameProcess(1, "bench")
	tr.NameThread(1, 2, "render")
	tr.AddEvent(Event{
		Name: "present", Cat: CatEGL, PID: 1, TID: 2, Seq: 1,
		VStart: 1500, VDur: 2500,
		WStart: time.Unix(0, 0), WDur: 3000 * time.Nanosecond,
	})
	tr.AddEvent(Event{
		Name: "noop", Cat: CatDiplomat, PID: 1, TID: 2, Seq: 2,
		VStart: 4000, VDur: 0, // the zero-duration span
		WStart: time.Unix(0, 0), WDur: 0,
	})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"ts":0,"args":{"name":"bench"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":2,"ts":0,"args":{"name":"render"}},` +
		`{"name":"present","cat":"egl","ph":"X","pid":1,"tid":2,"ts":1.5,"dur":2.5,"args":{"wall_us":3}},` +
		`{"name":"noop","cat":"diplomat","ph":"X","pid":1,"tid":2,"ts":4,"dur":0.001,"args":{"wall_us":0}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("chrome trace output changed:\n got: %s\nwant: %s", got, want)
	}
}

func TestTracerEventCapCountsDrops(t *testing.T) {
	tr := New()
	tr.SetEventCap(4)
	for i := 0; i < 10; i++ {
		// All TID 0: one stripe, so exactly cap events survive.
		tr.AddEvent(Event{Name: "noop", Cat: CatDiplomat, PID: 1, TID: 0,
			Seq: int64(i + 1), VStart: vclock.Duration(i), VDur: 1})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want the cap 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}

	rep := tr.TextReport()
	if !strings.Contains(rep, "(6 spans dropped at the event-buffer cap)") {
		t.Fatalf("text report missing drop footer:\n%s", rep)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Events  []json.RawMessage `json:"events"`
		Dropped int64             `json:"dropped_events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 4 || out.Dropped != 6 {
		t.Fatalf("json: events=%d dropped=%d", len(out.Events), out.Dropped)
	}

	// Reset clears the drop count; n <= 0 restores the default cap.
	tr.Reset()
	tr.SetEventCap(0)
	if tr.Dropped() != 0 {
		t.Fatalf("dropped after reset = %d", tr.Dropped())
	}
	for i := 0; i < 10; i++ {
		tr.AddEvent(Event{Name: "noop", TID: 0, Seq: int64(i + 1)})
	}
	if tr.Len() != 10 || tr.Dropped() != 0 {
		t.Fatalf("default cap dropped events: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	if !strings.Contains(tr.TextReport(), "noop") || strings.Contains(tr.TextReport(), "dropped") {
		t.Fatalf("drop footer should be absent when nothing dropped:\n%s", tr.TextReport())
	}
}

func TestMetricsConcurrentCreateSamePointer(t *testing.T) {
	ms := NewMetrics()
	const n = 16
	got := make(chan *Metric, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := ms.Metric("shared")
			m.Record(i, 10)
			got <- m
		}(i)
	}
	wg.Wait()
	close(got)
	first := <-got
	for m := range got {
		if m != first {
			t.Fatal("concurrent creation returned distinct metrics for one name")
		}
	}
	if first.Calls() != n || first.Total() != n*10 {
		t.Fatalf("calls=%d total=%v", first.Calls(), first.Total())
	}
}
