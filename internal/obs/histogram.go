package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cycada/internal/sim/vclock"
)

// Log-bucketed duration histograms (frame-health telemetry, DESIGN.md §10).
// A Metric records count+total, which is enough for averages but says nothing
// about tails; where tails matter — the EGL present path, SurfaceFlinger
// compose, diplomat calls, impersonation sessions — sites record into a
// Histogram instead and report P50/P95/P99 and max.
//
// Buckets are powers of two of virtual nanoseconds: bucket i holds durations
// whose bit length is i, i.e. [2^(i-1), 2^i). Observing is a handful of
// atomic adds on the caller's TID stripe; while the owning registry is
// disabled the whole cost of an Observe site is one atomic load.

// histBuckets covers durations up to ~2^47 ns of virtual time (~39 hours),
// far beyond any simulated frame; longer observations clamp into the last
// bucket.
const histBuckets = 48

// histStripes must be a power of two; callers stripe by TID.
const histStripes = 16

type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64 // vclock nanoseconds
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is one named log-bucketed duration distribution. The pointer
// returned by Histograms.Histogram is stable; hot paths cache it and call
// Observe directly with their TID as the stripe.
type Histogram struct {
	name    string
	enabled *atomic.Bool // owning registry's gate; nil means always on
	stripes [histStripes]histStripe
}

// NewHistogram creates a standalone, always-enabled histogram (tests and
// tools; instrumentation sites should use a registry so they can be gated).
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a duration to its bucket index.
func bucketOf(d vclock.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration. stripe is any per-thread value (the TID);
// it is masked onto the stripe array. While the owning registry is disabled
// this is a single atomic load.
func (h *Histogram) Observe(stripe int, d vclock.Duration) {
	if h.enabled != nil && !h.enabled.Load() {
		return
	}
	s := &h.stripes[stripe&(histStripes-1)]
	s.count.Add(1)
	s.sum.Add(int64(d))
	s.buckets[bucketOf(d)].Add(1)
	for {
		cur := s.max.Load()
		if int64(d) <= cur || s.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count sums the observation count across stripes.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Sum sums the observed virtual time across stripes.
func (h *Histogram) Sum() vclock.Duration {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].sum.Load()
	}
	return vclock.Duration(n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() vclock.Duration {
	var m int64
	for i := range h.stripes {
		if v := h.stripes[i].max.Load(); v > m {
			m = v
		}
	}
	return vclock.Duration(m)
}

// Avg returns the mean observed duration.
func (h *Histogram) Avg() vclock.Duration {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return h.Sum() / vclock.Duration(c)
}

// Buckets calls fn for every log2 bucket in ascending order with the
// bucket's inclusive upper edge in virtual nanoseconds and the observation
// count it holds. The telemetry exposition layer renders these as cumulative
// Prometheus buckets; the sum of all counts equals Count().
func (h *Histogram) Buckets(fn func(upper vclock.Duration, count int64)) {
	bkt, _ := h.merged()
	for b, n := range bkt {
		fn(bucketUpperEdge(b), n)
	}
}

// merged collapses the stripes into one bucket array.
func (h *Histogram) merged() (bkt [histBuckets]int64, total int64) {
	for i := range h.stripes {
		for b := range bkt {
			bkt[b] += h.stripes[i].buckets[b].Load()
		}
	}
	for _, n := range bkt {
		total += n
	}
	return bkt, total
}

// Quantile returns an upper bound of the q-quantile (0 < q <= 1): the upper
// edge of the bucket the quantile falls in, clamped to the observed max.
// Log buckets make this at worst a 2x overestimate — the right bias for an
// alerting tail statistic.
func (h *Histogram) Quantile(q float64) vclock.Duration {
	bkt, total := h.merged()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for b, n := range bkt {
		seen += n
		if seen >= target {
			var hi vclock.Duration
			if b == 0 {
				hi = 0
			} else {
				hi = vclock.Duration(1)<<uint(b) - 1
			}
			if m := h.Max(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.Max()
}

// P50 returns the median upper bound.
func (h *Histogram) P50() vclock.Duration { return h.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (h *Histogram) P95() vclock.Duration { return h.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound.
func (h *Histogram) P99() vclock.Duration { return h.Quantile(0.99) }

// histSample is one cumulative capture of a histogram's totals, used by the
// rolling-window layer (window.go) to form per-interval deltas. The stripes
// are read without stopping writers, so a sample is not an atomic cut across
// fields — windows tolerate the skew (at most a handful of in-flight
// observations) in exchange for never pausing the hot path.
type histSample struct {
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

// sample captures the histogram's cumulative totals.
func (h *Histogram) sample() histSample {
	var s histSample
	for i := range h.stripes {
		st := &h.stripes[i]
		s.count += st.count.Load()
		s.sum += st.sum.Load()
		for b := range s.buckets {
			s.buckets[b] += st.buckets[b].Load()
		}
	}
	return s
}

// add accumulates another sample (multi-registry aggregation).
func (s *histSample) add(o histSample) {
	s.count += o.count
	s.sum += o.sum
	for b := range s.buckets {
		s.buckets[b] += o.buckets[b]
	}
}

// sub forms the delta against an earlier sample.
func (s *histSample) sub(o histSample) {
	s.count -= o.count
	s.sum -= o.sum
	for b := range s.buckets {
		s.buckets[b] -= o.buckets[b]
	}
}

// Merge folds another histogram's observations into h. It is an aggregation
// operation, not an observation site: it bypasses the enabled gate (merging
// harvested per-session registries into a device registry must work however
// the gates are set) and lands everything on stripe 0 — counts, sums, and
// buckets add exactly; the merged max is exact too.
func (h *Histogram) Merge(from *Histogram) {
	s := from.sample()
	if s.count == 0 {
		return
	}
	dst := &h.stripes[0]
	dst.count.Add(s.count)
	dst.sum.Add(s.sum)
	for b, n := range s.buckets {
		if n != 0 {
			dst.buckets[b].Add(n)
		}
	}
	m := int64(from.Max())
	for {
		cur := dst.max.Load()
		if m <= cur || dst.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// reset zeroes the stripes in place; cached *Histogram pointers stay valid.
func (h *Histogram) reset() {
	for i := range h.stripes {
		s := &h.stripes[i]
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
		for b := range s.buckets {
			s.buckets[b].Store(0)
		}
	}
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() { h.reset() }

// Histograms is a registry of named histograms with one shared enable gate:
// every histogram created from a registry observes only while the registry
// is enabled, so the disabled cost of every site is one atomic load.
type Histograms struct {
	enabled  atomic.Bool
	createMu sync.Mutex
	m        sync.Map // string -> *Histogram
}

// NewHistograms creates an empty, disabled registry.
func NewHistograms() *Histograms { return &Histograms{} }

// DefaultHistograms is the process-wide registry the instrumentation sites
// (EGL present, SurfaceFlinger compose, diplomat calls, impersonation
// sessions, harness frames) record into. Disabled until something — the
// experiment runner, a -snapshot flag, cycadatop — enables it.
var DefaultHistograms = NewHistograms()

// SetEnabled turns observation on or off for every histogram in the registry.
func (hs *Histograms) SetEnabled(on bool) { hs.enabled.Store(on) }

// Enabled reports whether observations are being recorded.
func (hs *Histograms) Enabled() bool { return hs.enabled.Load() }

// Histogram returns the named histogram, creating it on first use. The
// returned pointer is stable for the lifetime of the registry.
func (hs *Histograms) Histogram(name string) *Histogram {
	if v, ok := hs.m.Load(name); ok {
		return v.(*Histogram)
	}
	hs.createMu.Lock()
	defer hs.createMu.Unlock()
	if v, ok := hs.m.Load(name); ok {
		return v.(*Histogram)
	}
	h := &Histogram{name: name, enabled: &hs.enabled}
	hs.m.Store(name, h)
	return h
}

// Lookup returns the named histogram without creating it.
func (hs *Histograms) Lookup(name string) (*Histogram, bool) {
	v, ok := hs.m.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Histogram), true
}

// Each calls fn for every histogram, in no particular order.
func (hs *Histograms) Each(fn func(*Histogram)) {
	hs.m.Range(func(_, v any) bool {
		fn(v.(*Histogram))
		return true
	})
}

// Reset zeroes every histogram in place; cached pointers stay valid.
func (hs *Histograms) Reset() {
	hs.Each(func(h *Histogram) { h.reset() })
}

// Merge folds every histogram of from into the same-named histogram of hs
// (creating it when absent). The device farm uses this to roll harvested
// per-session registries up into the device registry, so device-level
// telemetry — and the rolling windows scraping it — see every session's
// frames, not just boot and teardown.
func (hs *Histograms) Merge(from *Histograms) {
	from.Each(func(h *Histogram) {
		hs.Histogram(h.Name()).Merge(h)
	})
}

// TextReport renders all non-empty histograms, largest total first.
func (hs *Histograms) TextReport() string {
	var b strings.Builder
	hs.WriteText(&b)
	return b.String()
}

// WriteText writes the text report to w.
func (hs *Histograms) WriteText(w io.Writer) {
	type row struct {
		name  string
		count int64
		sum   vclock.Duration
		h     *Histogram
	}
	var rows []row
	hs.Each(func(h *Histogram) {
		if c := h.Count(); c > 0 {
			rows = append(rows, row{h.Name(), c, h.Sum(), h})
		}
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sum != rows[j].sum {
			return rows[i].sum > rows[j].sum
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "%-28s %10s %12s %12s %12s %12s %12s\n",
		"histogram", "count", "avg-vt-us", "p50-vt-us", "p95-vt-us", "p99-vt-us", "max-vt-us")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10d %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			r.name, r.count, r.h.Avg().Micros(),
			r.h.P50().Micros(), r.h.P95().Micros(), r.h.P99().Micros(), r.h.Max().Micros())
	}
}
