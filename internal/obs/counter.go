package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event counter: the third leg of the telemetry
// stool next to Metric (calls + time) and Histogram (latency distribution).
// It exists for events that have no duration — retries, quarantines,
// reboots, abandoned goroutines — where a Metric's time column would be
// noise. All methods are safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Counters is a named-counter registry, one per owning subsystem (the farm
// keeps its own, like a device keeps its own Histograms), so concurrent
// owners never share hot cache lines through a global map.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounters creates an empty registry.
func NewCounters() *Counters { return &Counters{} }

// DefaultCounters is the process-wide registry kernels attach to unless
// configured with their own (the farm gives each device stack its own, like
// it does for histograms). Event sites that have no duration — present
// retries and drops, frame-deadline misses — count here so the telemetry
// plane can export and window them.
var DefaultCounters = NewCounters()

// Counter returns the named counter, creating it on first use.
func (cs *Counters) Counter(name string) *Counter {
	cs.mu.RLock()
	c := cs.m[name]
	cs.mu.RUnlock()
	if c != nil {
		return c
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.m == nil {
		cs.m = make(map[string]*Counter)
	}
	if c = cs.m[name]; c == nil {
		c = &Counter{name: name}
		cs.m[name] = c
	}
	return c
}

// Lookup returns the named counter without creating it.
func (cs *Counters) Lookup(name string) (*Counter, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	c, ok := cs.m[name]
	return c, ok
}

// Each calls fn for every counter in name order.
func (cs *Counters) Each(fn func(*Counter)) {
	cs.mu.RLock()
	names := make([]string, 0, len(cs.m))
	for name := range cs.m {
		names = append(names, name)
	}
	sort.Strings(names)
	counters := make([]*Counter, len(names))
	for i, name := range names {
		counters[i] = cs.m[name]
	}
	cs.mu.RUnlock()
	for _, c := range counters {
		fn(c)
	}
}

// String renders "name=count" pairs in name order, for snapshot sections.
func (cs *Counters) String() string {
	var b strings.Builder
	cs.Each(func(c *Counter) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c.Name(), c.Load())
	})
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Section renders the registry as a snapshot section, one row per counter.
func (cs *Counters) Section() Section {
	var sec Section
	cs.Each(func(c *Counter) {
		sec.Addf(c.Name(), "%d", c.Load())
	})
	return sec
}
