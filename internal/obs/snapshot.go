package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Live introspection snapshots (DESIGN.md §10). A snapshot is a point-in-time
// capture of system state — active impersonation sessions and gate depth,
// loaded DLR replicas and degraded connections, EGL contexts per thread,
// frame histograms, fault-injection schedule status — rendered as text or
// JSON. obs cannot import the layers that own that state, so each layer
// registers a SnapshotSource when it boots; Snapshot() polls every source.
//
// Source registration is gated: tests and plain runs boot many systems, and
// unconditionally registering every booted subsystem would accumulate stale
// sources (and keep dead systems reachable). Callers that want snapshots —
// cycadatop, the -snapshot flags, chaos reports — call
// SetSnapshotSourcesEnabled(true) before booting.

// Row is one key/value line of a snapshot section.
type Row struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Section is one subsystem's contribution to a snapshot.
type Section struct {
	Name string `json:"name"`
	Rows []Row  `json:"rows"`
}

// Add appends one row, formatting the value with fmt.Sprint.
func (s *Section) Add(key string, value any) {
	s.Rows = append(s.Rows, Row{Key: key, Value: fmt.Sprint(value)})
}

// Addf appends one row with a formatted value.
func (s *Section) Addf(key, format string, args ...any) {
	s.Rows = append(s.Rows, Row{Key: key, Value: fmt.Sprintf(format, args...)})
}

// SnapshotSource produces one section of live state. Sources must be safe to
// call at any time from any goroutine.
type SnapshotSource func() Section

var (
	snapMu      sync.Mutex
	snapEnabled bool
	snapSources []*snapEntry
)

type snapEntry struct {
	name string
	fn   SnapshotSource
}

// SetSnapshotSourcesEnabled turns source registration on or off. Must be on
// before the system of interest boots, or its layers will skip registering.
func SetSnapshotSourcesEnabled(on bool) {
	snapMu.Lock()
	snapEnabled = on
	snapMu.Unlock()
}

// SnapshotSourcesEnabled reports whether sources register.
func SnapshotSourcesEnabled() bool {
	snapMu.Lock()
	defer snapMu.Unlock()
	return snapEnabled
}

// RegisterSnapshotSource registers a named source and returns its
// unregister function. While registration is disabled it is a no-op (the
// returned function is still safe to call).
func RegisterSnapshotSource(name string, fn SnapshotSource) (unregister func()) {
	snapMu.Lock()
	defer snapMu.Unlock()
	if !snapEnabled {
		return func() {}
	}
	e := &snapEntry{name: name, fn: fn}
	snapSources = append(snapSources, e)
	return func() {
		snapMu.Lock()
		defer snapMu.Unlock()
		for i, cur := range snapSources {
			if cur == e {
				snapSources = append(snapSources[:i], snapSources[i+1:]...)
				return
			}
		}
	}
}

// SystemSnapshot is one captured snapshot.
type SystemSnapshot struct {
	Sections []Section `json:"sections"`
}

// Snapshot captures the current state: every registered source plus the
// built-in observability sections (frame histograms, flight-recorder and
// tracer counters).
func Snapshot() *SystemSnapshot {
	snapMu.Lock()
	entries := make([]*snapEntry, len(snapSources))
	copy(entries, snapSources)
	snapMu.Unlock()

	snap := &SystemSnapshot{}
	for _, e := range entries {
		sec := e.fn()
		if sec.Name == "" {
			sec.Name = e.name
		}
		snap.Sections = append(snap.Sections, sec)
	}
	sort.SliceStable(snap.Sections, func(i, j int) bool {
		return snap.Sections[i].Name < snap.Sections[j].Name
	})

	snap.Sections = append(snap.Sections, histogramSection(DefaultHistograms))
	snap.Sections = append(snap.Sections, flightSection(DefaultFlight))
	snap.Sections = append(snap.Sections, tracerSection(Default))
	return snap
}

// histogramSection summarizes a registry's non-empty histograms.
func histogramSection(hs *Histograms) Section {
	sec := Section{Name: "histograms"}
	sec.Add("enabled", hs.Enabled())
	type row struct {
		name string
		h    *Histogram
	}
	var rows []row
	hs.Each(func(h *Histogram) {
		if h.Count() > 0 {
			rows = append(rows, row{h.Name(), h})
		}
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		sec.Addf(r.name, "count=%d avg=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
			r.h.Count(), r.h.Avg().Micros(),
			r.h.P50().Micros(), r.h.P95().Micros(), r.h.P99().Micros(), r.h.Max().Micros())
	}
	return sec
}

// flightSection summarizes the flight recorder's counters.
func flightSection(f *FlightRecorder) Section {
	sec := Section{Name: "flight-recorder"}
	sec.Add("enabled", f.Enabled())
	sec.Add("events-recorded", f.Writes())
	sec.Add("events-overwritten", f.Overwritten())
	sec.Add("auto-dumps", f.Dumps())
	return sec
}

// tracerSection summarizes the span tracer's counters.
func tracerSection(tr *Tracer) Section {
	sec := Section{Name: "tracer"}
	sec.Add("enabled", tr.Enabled())
	sec.Add("spans-buffered", tr.Len())
	sec.Add("spans-dropped", tr.Dropped())
	return sec
}

// Text renders the snapshot as an indented text report.
func (s *SystemSnapshot) Text() string {
	var b strings.Builder
	for _, sec := range s.Sections {
		fmt.Fprintf(&b, "== %s\n", sec.Name)
		for _, r := range sec.Rows {
			fmt.Fprintf(&b, "  %-36s %s\n", r.Key, r.Value)
		}
	}
	return b.String()
}

// WriteJSON writes the snapshot as one JSON object.
func (s *SystemSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
