package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cycada/internal/sim/vclock"
)

// metricStripes must be a power of two; callers stripe by TID so concurrent
// threads update disjoint cache lines.
const metricStripes = 16

type metricStripe struct {
	calls atomic.Int64
	total atomic.Int64 // vclock nanoseconds
	_     [48]byte     // pad to a cache line
}

// Metric is one named counter/timer pair. Record is two atomic adds on the
// caller's stripe — no locks, no map lookups — which is what lets it replace
// the old global-mutex profiler on the diplomat hot path: callers cache the
// *Metric once and hit only their own stripe afterwards.
type Metric struct {
	name    string
	stripes [metricStripes]metricStripe
}

// Name returns the metric name.
func (m *Metric) Name() string { return m.name }

// Record adds one call of duration d. stripe is any per-thread value (the
// TID); it is masked onto the stripe array.
func (m *Metric) Record(stripe int, d vclock.Duration) {
	s := &m.stripes[stripe&(metricStripes-1)]
	s.calls.Add(1)
	s.total.Add(int64(d))
}

// Calls sums the call count across stripes.
func (m *Metric) Calls() int64 {
	var n int64
	for i := range m.stripes {
		n += m.stripes[i].calls.Load()
	}
	return n
}

// Total sums the recorded virtual time across stripes.
func (m *Metric) Total() vclock.Duration {
	var n int64
	for i := range m.stripes {
		n += m.stripes[i].total.Load()
	}
	return vclock.Duration(n)
}

// reset zeroes the stripes in place, so cached *Metric pointers stay valid
// across a Metrics.Reset.
func (m *Metric) reset() {
	for i := range m.stripes {
		m.stripes[i].calls.Store(0)
		m.stripes[i].total.Store(0)
	}
}

// Metrics is a registry of named metrics. Reads vastly outnumber creations,
// so lookups go through a sync.Map.
type Metrics struct {
	createMu sync.Mutex
	m        sync.Map // string -> *Metric
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Metric returns the named metric, creating it on first use. The returned
// pointer is stable for the lifetime of the registry — cache it on hot paths.
func (ms *Metrics) Metric(name string) *Metric {
	if v, ok := ms.m.Load(name); ok {
		return v.(*Metric)
	}
	ms.createMu.Lock()
	defer ms.createMu.Unlock()
	if v, ok := ms.m.Load(name); ok {
		return v.(*Metric)
	}
	m := &Metric{name: name}
	ms.m.Store(name, m)
	return m
}

// Lookup returns the named metric without creating it.
func (ms *Metrics) Lookup(name string) (*Metric, bool) {
	v, ok := ms.m.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Metric), true
}

// Each calls fn for every metric, in no particular order.
func (ms *Metrics) Each(fn func(*Metric)) {
	ms.m.Range(func(_, v any) bool {
		fn(v.(*Metric))
		return true
	})
}

// Reset zeroes every metric in place; cached *Metric pointers stay valid.
func (ms *Metrics) Reset() {
	ms.Each(func(m *Metric) { m.reset() })
}

// Record is the convenience slow path: one lookup plus Record. Hot paths
// should cache the Metric instead.
func (ms *Metrics) Record(name string, stripe int, d vclock.Duration) {
	ms.Metric(name).Record(stripe, d)
}

// TextReport renders all non-empty metrics, largest total first.
func (ms *Metrics) TextReport() string {
	type row struct {
		name  string
		calls int64
		total vclock.Duration
	}
	var rows []row
	ms.Each(func(m *Metric) {
		if c := m.Calls(); c > 0 {
			rows = append(rows, row{m.Name(), c, m.Total()})
		}
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %10s %14s %12s\n", "metric", "calls", "total-vt-us", "avg-vt-us")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %10d %14.1f %12.1f\n",
			r.name, r.calls, r.total.Micros(), r.total.Micros()/float64(r.calls))
	}
	return b.String()
}
