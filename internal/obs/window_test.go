package obs

import (
	"sync"
	"testing"
	"time"

	"cycada/internal/sim/vclock"
)

// TestHistogramEmptyZeroValues pins the zero-value contract of the cumulative
// histogram: every statistic of an empty histogram is exactly 0, no division
// by zero, no garbage. The rolling windows lean on the same contract for idle
// intervals, so this is load-bearing for the telemetry plane.
func TestHistogramEmptyZeroValues(t *testing.T) {
	h := NewHistogram("empty")
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("Sum = %v, want 0", got)
	}
	if got := h.Avg(); got != 0 {
		t.Fatalf("Avg = %v, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Fatalf("Max = %v, want 0", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v, want 0", q, got)
		}
	}
	var total int64
	h.Buckets(func(_ vclock.Duration, n int64) { total += n })
	if total != 0 {
		t.Fatalf("bucket total = %d, want 0", total)
	}
}

// TestWindowStatsEmptyZeroValues pins the same contract on the windowed view:
// a zero WindowStats and a zero CounterWindow answer 0 everywhere.
func TestWindowStatsEmptyZeroValues(t *testing.T) {
	var ws WindowStats
	if ws.Avg() != 0 || ws.Max() != 0 || ws.Rate() != 0 {
		t.Fatalf("empty WindowStats: avg=%v max=%v rate=%v, want all 0", ws.Avg(), ws.Max(), ws.Rate())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := ws.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	var cw CounterWindow
	if cw.Rate() != 0 {
		t.Fatalf("empty CounterWindow rate = %v, want 0", cw.Rate())
	}
}

// TestWindowsRotateCapturesDeltas drives rotations by hand and checks the
// windowed statistics reflect only the observations of the covered interval,
// not the since-boot totals.
func TestWindowsRotateCapturesDeltas(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	cs := NewCounters()
	w := NewWindows(time.Second, 8)
	w.Track(hs)
	w.TrackCounters(cs)

	h := hs.Histogram("present")
	for i := 0; i < 100; i++ {
		h.Observe(0, 1000) // 1µs
	}
	cs.Counter("drops").Add(5)
	w.Rotate()

	ws, ok := w.Hist("present", time.Second)
	if !ok {
		t.Fatal("series 'present' unknown after rotate")
	}
	if ws.Count != 100 {
		t.Fatalf("window count = %d, want 100", ws.Count)
	}
	if ws.Span != time.Second {
		t.Fatalf("window span = %v, want 1s", ws.Span)
	}
	if got := ws.Rate(); got != 100 {
		t.Fatalf("window rate = %v, want 100/s", got)
	}
	cw, ok := w.Counter("drops", time.Second)
	if !ok || cw.Delta != 5 {
		t.Fatalf("counter window = %+v ok=%v, want delta 5", cw, ok)
	}

	// A second, idle interval: the 1s window must go to zero while the 2s
	// window still covers the busy interval.
	w.Rotate()
	ws, _ = w.Hist("present", time.Second)
	if ws.Count != 0 || ws.Rate() != 0 || ws.P99() != 0 {
		t.Fatalf("idle 1s window = %+v, want zeroes", ws)
	}
	ws, _ = w.Hist("present", 2*time.Second)
	if ws.Count != 100 {
		t.Fatalf("2s window count = %d, want 100", ws.Count)
	}
	if got := ws.Rate(); got != 50 {
		t.Fatalf("2s window rate = %v, want 50/s", got)
	}
	cw, _ = w.Counter("drops", time.Second)
	if cw.Delta != 0 {
		t.Fatalf("idle counter delta = %d, want 0", cw.Delta)
	}
}

// TestWindowsQuantileUpperBound checks windowed quantiles carry the same
// log-bucket upper-edge bias as the cumulative histogram: the answer bounds
// the true value from above by at most 2x.
func TestWindowsQuantileUpperBound(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	w := NewWindows(time.Second, 4)
	w.Track(hs)
	h := hs.Histogram("lat")
	for i := 0; i < 99; i++ {
		h.Observe(0, 1000)
	}
	h.Observe(0, 100000)
	w.Rotate()
	ws, _ := w.Hist("lat", time.Second)
	p99 := ws.P99()
	if p99 < 1000 || p99 >= 2048 {
		t.Fatalf("P99 = %v, want in [1000, 2048) (upper edge of the 1µs bucket)", p99)
	}
	max := ws.Max()
	if max < 100000 || max >= 200000 {
		t.Fatalf("Max = %v, want in [100000, 200000)", max)
	}
	if ws.Quantile(1.0) != max {
		t.Fatalf("Quantile(1.0) = %v, want Max %v", ws.Quantile(1.0), max)
	}
}

// TestWindowsTrackPrimesBaseline verifies that a registry carrying history is
// primed at Track time: the first rotation must not report the since-boot
// totals as one interval's worth of traffic.
func TestWindowsTrackPrimesBaseline(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	h := hs.Histogram("old")
	for i := 0; i < 1000; i++ {
		h.Observe(0, 500)
	}
	cs := NewCounters()
	cs.Counter("old-events").Add(777)

	w := NewWindows(time.Second, 4)
	w.Track(hs)
	w.TrackCounters(cs)
	h.Observe(0, 500) // one genuinely new observation
	cs.Counter("old-events").Inc()
	w.Rotate()

	ws, _ := w.Hist("old", time.Second)
	if ws.Count != 1 {
		t.Fatalf("first-interval count = %d, want 1 (history must be primed away)", ws.Count)
	}
	cw, _ := w.Counter("old-events", time.Second)
	if cw.Delta != 1 {
		t.Fatalf("first-interval delta = %d, want 1", cw.Delta)
	}
}

// TestWindowsSumAcrossRegistries checks same-named series in different
// tracked registries (the farm's per-device registries) roll up into one
// window.
func TestWindowsSumAcrossRegistries(t *testing.T) {
	a, b := NewHistograms(), NewHistograms()
	a.SetEnabled(true)
	b.SetEnabled(true)
	w := NewWindows(time.Second, 4)
	w.Track(a)
	w.Track(b)
	a.Histogram("present").Observe(0, 1000)
	a.Histogram("present").Observe(0, 1000)
	b.Histogram("present").Observe(0, 1000)
	w.Rotate()
	ws, _ := w.Hist("present", time.Second)
	if ws.Count != 3 {
		t.Fatalf("summed window count = %d, want 3", ws.Count)
	}
}

// TestWindowsRingWraps checks old intervals age out of the ring: with 4
// slots, traffic from 5 rotations ago is gone even at the widest span.
func TestWindowsRingWraps(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	w := NewWindows(time.Second, 4)
	w.Track(hs)
	hs.Histogram("x").Observe(0, 1000)
	w.Rotate()
	for i := 0; i < 4; i++ {
		w.Rotate()
	}
	ws, _ := w.Hist("x", time.Hour)
	if ws.Count != 0 {
		t.Fatalf("count after ring wrap = %d, want 0", ws.Count)
	}
	if ws.Span != 4*time.Second {
		t.Fatalf("span clamped to %v, want 4s", ws.Span)
	}
}

// TestWindowsBeforeFirstRotation: a tracked series queried before any
// rotation answers the safe zero window.
func TestWindowsBeforeFirstRotation(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	hs.Histogram("x").Observe(0, 1000)
	w := NewWindows(time.Second, 4)
	w.Track(hs)
	ws, ok := w.Hist("x", time.Second)
	if !ok {
		t.Fatal("tracked series should be known (primed) before rotation")
	}
	if ws.Count != 0 || ws.Span != 0 || ws.Rate() != 0 {
		t.Fatalf("pre-rotation window = %+v, want zeroes", ws)
	}
}

// TestWindowsConcurrentRotateAndObserve races rotation, queries and hot-path
// writers; run under -race this pins the documented concurrency contract.
func TestWindowsConcurrentRotateAndObserve(t *testing.T) {
	hs := NewHistograms()
	hs.SetEnabled(true)
	cs := NewCounters()
	w := NewWindows(time.Millisecond, 16)
	w.Track(hs)
	w.TrackCounters(cs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			h := hs.Histogram("hot")
			c := cs.Counter("hot-events")
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(stripe, 1000)
				c.Inc()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			w.Rotate()
			w.EachHist(10*time.Millisecond, func(string, WindowStats) {})
			w.EachCounter(10*time.Millisecond, func(string, CounterWindow) {})
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestWindowsStartStop exercises the background rotation goroutine,
// including Stop-before-Start and double-Stop.
func TestWindowsStartStop(t *testing.T) {
	w := NewWindows(time.Millisecond, 8)
	hs := NewHistograms()
	hs.SetEnabled(true)
	w.Track(hs)
	w.Start()
	hs.Histogram("x").Observe(0, 1000)
	deadline := time.Now().Add(5 * time.Second)
	for w.Rotations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no rotation within 5s of Start")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent

	w2 := NewWindows(time.Second, 8)
	w2.Stop() // Stop before Start must not hang
}
