package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cycada/internal/sim/vclock"
)

// The flight recorder (DESIGN.md §10): an always-on black box of the most
// recent span/fault/errno events, kept in fixed-size per-thread-striped ring
// buffers. Recording claims a slot with one atomic index bump and copies a
// fixed-size event under the stripe's (per-thread, so uncontended) mutex —
// never allocating — and old events are silently overwritten, with the
// overwrite count derivable from the index. The recorder is dumped
// automatically when a diplomat panic is isolated, an impersonation rollback
// fires, a chaos invariant fails, or a frame deadline is missed, so those
// reports come with the recent event tail instead of just a boolean.

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

// The event kinds.
const (
	FlightSpan  FlightKind = iota + 1 // a completed operation (Code = vt ns)
	FlightFault                       // an injected or organic fault surfaced
	FlightErrno                       // an errno was set (Code = errno)
	FlightMark                        // a state-change marker (dump triggers)
)

// String implements fmt.Stringer.
func (k FlightKind) String() string {
	switch k {
	case FlightSpan:
		return "span"
	case FlightFault:
		return "fault"
	case FlightErrno:
		return "errno"
	case FlightMark:
		return "mark"
	default:
		return "?"
	}
}

// FlightEvent is one recorded event. Name must be a constant or otherwise
// pre-built string: recording stores the header only and never allocates.
type FlightEvent struct {
	Seq  uint64 // global recording order
	TID  int32
	Kind FlightKind
	Cat  string
	Name string
	Code int64           // kind-specific: duration ns, errno, fault point
	VT   vclock.Duration // thread virtual time at the event
}

// flightRingSize is the per-stripe capacity; must be a power of two.
// 16 stripes x 256 events bounds the whole recorder at a few hundred KB.
const flightRingSize = 256

// flightStripes must be a power of two; stripes are selected by TID, so a
// thread's recent events survive until that thread (or a TID collision)
// overwrites them.
const flightStripes = 16

type flightRing struct {
	writes atomic.Uint64 // slots ever claimed; index of the next slot
	mu     sync.Mutex    // guards buf; uncontended for per-thread writers
	buf    [flightRingSize]FlightEvent
	_      [64]byte
}

// FlightRecorder is the black box. All methods are safe for concurrent use;
// the zero value is not usable, use NewFlightRecorder.
type FlightRecorder struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	rings   [flightStripes]flightRing
	dumps   atomic.Int64

	outMu sync.Mutex
	out   io.Writer // dump destination; nil means os.Stderr

	// hookMu guards hooks, the observers AutoDump notifies after rendering
	// (the telemetry server's /events stream subscribes here).
	hookMu sync.Mutex
	hooks  []*dumpHook
}

type dumpHook struct{ fn func(*FlightDump) }

// NewFlightRecorder creates an enabled recorder (the flight recorder is the
// always-on layer; disable it explicitly to measure its cost).
func NewFlightRecorder() *FlightRecorder {
	f := &FlightRecorder{}
	f.enabled.Store(true)
	return f
}

// DefaultFlight is the process-wide recorder kernels attach to unless
// configured with their own. Unlike the tracer it starts enabled.
var DefaultFlight = NewFlightRecorder()

// SetEnabled turns recording on or off.
func (f *FlightRecorder) SetEnabled(on bool) { f.enabled.Store(on) }

// Enabled reports whether events are being recorded. This is the single
// atomic load paid per site while the recorder is off.
func (f *FlightRecorder) Enabled() bool { return f.enabled.Load() }

// SetOutput redirects automatic dumps (nil restores os.Stderr).
func (f *FlightRecorder) SetOutput(w io.Writer) {
	f.outMu.Lock()
	f.out = w
	f.outMu.Unlock()
}

// Record appends one event to the TID's ring, overwriting the oldest.
func (f *FlightRecorder) Record(tid int, kind FlightKind, cat, name string, code int64, vt vclock.Duration) {
	if !f.enabled.Load() {
		return
	}
	r := &f.rings[tid&(flightStripes-1)]
	ev := FlightEvent{
		Seq:  f.seq.Add(1),
		TID:  int32(tid),
		Kind: kind,
		Cat:  cat,
		Name: name,
		Code: code,
		VT:   vt,
	}
	slot := (r.writes.Add(1) - 1) & (flightRingSize - 1)
	r.mu.Lock()
	r.buf[slot] = ev
	r.mu.Unlock()
}

// Dumps reports how many automatic dumps have fired.
func (f *FlightRecorder) Dumps() int64 { return f.dumps.Load() }

// AddDumpHook registers fn to be called — synchronously, after the text
// rendering — with every dump AutoDump produces, and returns its remove
// function. Hooks must not block: the telemetry server's /events stream
// uses one to fan incident markers out to SSE subscribers with non-blocking
// sends. Hooks run outside the recorder's output lock, so a hook may itself
// inspect the recorder.
func (f *FlightRecorder) AddDumpHook(fn func(*FlightDump)) (remove func()) {
	h := &dumpHook{fn: fn}
	f.hookMu.Lock()
	f.hooks = append(f.hooks, h)
	f.hookMu.Unlock()
	return func() {
		f.hookMu.Lock()
		defer f.hookMu.Unlock()
		for i, cur := range f.hooks {
			if cur == h {
				f.hooks = append(f.hooks[:i], f.hooks[i+1:]...)
				return
			}
		}
	}
}

// notifyDumpHooks calls every registered hook with the dump.
func (f *FlightRecorder) notifyDumpHooks(d *FlightDump) {
	f.hookMu.Lock()
	hooks := make([]*dumpHook, len(f.hooks))
	copy(hooks, f.hooks)
	f.hookMu.Unlock()
	for _, h := range hooks {
		h.fn(d)
	}
}

// Writes reports how many events have ever been recorded.
func (f *FlightRecorder) Writes() uint64 {
	var n uint64
	for i := range f.rings {
		n += f.rings[i].writes.Load()
	}
	return n
}

// Overwritten reports how many recorded events have been lost to ring
// overwrites (the drop count of the fixed-size buffers).
func (f *FlightRecorder) Overwritten() uint64 {
	var n uint64
	for i := range f.rings {
		if w := f.rings[i].writes.Load(); w > flightRingSize {
			n += w - flightRingSize
		}
	}
	return n
}

// FlightDump is a point-in-time copy of the recorder contents.
type FlightDump struct {
	Reason      string
	Events      []FlightEvent // in recording order (ascending Seq)
	Writes      uint64        // events ever recorded
	Overwritten uint64        // events lost to ring overwrites
}

// Dump snapshots the recorder. Safe to call while writers are recording: a
// slot being overwritten during the copy is captured as either the old or
// the new event, never torn.
func (f *FlightRecorder) Dump(reason string) *FlightDump {
	d := &FlightDump{Reason: reason}
	for i := range f.rings {
		r := &f.rings[i]
		w := r.writes.Load()
		d.Writes += w
		if w > flightRingSize {
			d.Overwritten += w - flightRingSize
		}
		r.mu.Lock()
		n := w
		if n > flightRingSize {
			n = flightRingSize
		}
		for j := uint64(0); j < n; j++ {
			if ev := r.buf[j]; ev.Seq != 0 {
				d.Events = append(d.Events, ev)
			}
		}
		r.mu.Unlock()
	}
	sort.Slice(d.Events, func(i, j int) bool { return d.Events[i].Seq < d.Events[j].Seq })
	return d
}

// maxWrittenDumps bounds how many full dumps one recorder renders to its
// output: a chaos soak isolating hundreds of injected panics must not flood
// stderr. Later triggers still snapshot, count, and return the dump — only
// the text rendering degrades to a one-line note.
const maxWrittenDumps = 4

// AutoDump snapshots the recorder, writes the text rendering to the
// configured output (os.Stderr by default), and returns the dump. This is
// what the trigger sites — diplomat panic isolation, impersonation rollback,
// chaos invariant failure, frame deadline miss — call.
func (f *FlightRecorder) AutoDump(reason string) *FlightDump {
	d := f.Dump(reason)
	n := f.dumps.Add(1)
	f.outMu.Lock()
	w := f.out
	if w == nil {
		w = os.Stderr
	}
	if n <= maxWrittenDumps {
		d.WriteText(w)
	} else {
		fmt.Fprintf(w, "== flight recorder dump #%d: %s (%d events; rendering suppressed after %d dumps)\n",
			n, d.Reason, len(d.Events), maxWrittenDumps)
	}
	f.outMu.Unlock()
	f.notifyDumpHooks(d)
	return d
}

// Reset clears all rings and counters (tests).
func (f *FlightRecorder) Reset() {
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		r.buf = [flightRingSize]FlightEvent{}
		r.writes.Store(0)
		r.mu.Unlock()
	}
	f.seq.Store(0)
	f.dumps.Store(0)
}

// WriteText renders the dump, oldest event first.
func (d *FlightDump) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== flight recorder dump: %s (%d events; %d recorded, %d overwritten)\n",
		d.Reason, len(d.Events), d.Writes, d.Overwritten)
	for _, ev := range d.Events {
		fmt.Fprintf(w, "  #%-8d tid=%-4d %-5s %-14s %-40s code=%-8d vt=%.1fus\n",
			ev.Seq, ev.TID, ev.Kind, ev.Cat, ev.Name, ev.Code, ev.VT.Micros())
	}
}

// String renders the dump as text.
func (d *FlightDump) String() string {
	var b strings.Builder
	d.WriteText(&b)
	return b.String()
}

// Contains reports whether any event's name contains the substring (tests
// and the chaos report assertions).
func (d *FlightDump) Contains(sub string) bool {
	for _, ev := range d.Events {
		if strings.Contains(ev.Name, sub) {
			return true
		}
	}
	return false
}
