package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// snapshotTestGate enables source registration for one test and restores the
// prior state (and any sources the test leaked) afterwards.
func snapshotTestGate(t *testing.T) {
	t.Helper()
	was := SnapshotSourcesEnabled()
	SetSnapshotSourcesEnabled(true)
	t.Cleanup(func() { SetSnapshotSourcesEnabled(was) })
}

func TestSnapshotSourceRegistrationGate(t *testing.T) {
	was := SnapshotSourcesEnabled()
	SetSnapshotSourcesEnabled(false)
	defer SetSnapshotSourcesEnabled(was)

	unreg := RegisterSnapshotSource("gated-off", func() Section {
		t.Error("disabled-registration source was polled")
		return Section{}
	})
	if strings.Contains(Snapshot().Text(), "gated-off") {
		t.Fatal("source registered while the gate was off")
	}
	unreg() // must be safe to call even though nothing registered
}

func TestSnapshotPollsSortedSourcesAndBuiltins(t *testing.T) {
	snapshotTestGate(t)
	unregB := RegisterSnapshotSource("b-source", func() Section {
		sec := Section{}
		sec.Add("answer", 42)
		sec.Addf("pair", "%d/%d", 1, 2)
		return sec
	})
	defer unregB()
	unregA := RegisterSnapshotSource("a-source", func() Section {
		return Section{Name: "a-source"}
	})
	defer unregA()

	snap := Snapshot()
	var names []string
	for _, sec := range snap.Sections {
		names = append(names, sec.Name)
	}
	ai, bi := indexOf(names, "a-source"), indexOf(names, "b-source")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("sections missing or unsorted: %v", names)
	}
	// The built-in observability sections always close the snapshot.
	n := len(names)
	if n < 3 || names[n-3] != "histograms" || names[n-2] != "flight-recorder" || names[n-1] != "tracer" {
		t.Fatalf("built-in sections missing or misplaced: %v", names)
	}

	text := snap.Text()
	if !strings.Contains(text, "== b-source") || !strings.Contains(text, "answer") ||
		!strings.Contains(text, "42") || !strings.Contains(text, "1/2") {
		t.Fatalf("text rendering lost rows:\n%s", text)
	}

	unregA()
	if strings.Contains(Snapshot().Text(), "== a-source") {
		t.Fatal("unregistered source still polled")
	}
}

func TestSnapshotWriteJSONRoundTrips(t *testing.T) {
	snapshotTestGate(t)
	unreg := RegisterSnapshotSource("json-source", func() Section {
		sec := Section{}
		sec.Add("k", "v")
		return sec
	})
	defer unreg()

	var buf bytes.Buffer
	if err := Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got SystemSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	found := false
	for _, sec := range got.Sections {
		if sec.Name == "json-source" {
			found = true
			if len(sec.Rows) != 1 || sec.Rows[0] != (Row{Key: "k", Value: "v"}) {
				t.Fatalf("rows = %+v", sec.Rows)
			}
		}
	}
	if !found {
		t.Fatalf("json-source section missing from decoded snapshot: %s", buf.String())
	}
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}
