package jsvm

// AST node definitions. Every node implementation is private; the engine's
// public surface is source-in, value-out.

type stmt interface{ stmtNode() }

type (
	varStmt struct {
		decls []varDecl
	}
	varDecl struct {
		name string
		init expr // may be nil
	}
	funcDeclStmt struct {
		name string
		fn   *funcLit
	}
	exprStmt struct {
		x expr
	}
	returnStmt struct {
		x expr // may be nil
	}
	ifStmt struct {
		cond expr
		then stmt
		els  stmt // may be nil
	}
	whileStmt struct {
		cond expr
		body stmt
		post bool // do/while
	}
	forStmt struct {
		init stmt // varStmt or exprStmt, may be nil
		cond expr // may be nil
		post expr // may be nil
		body stmt
	}
	forInStmt struct {
		varName string
		obj     expr
		body    stmt
	}
	blockStmt struct {
		list []stmt
	}
	breakStmt    struct{}
	continueStmt struct{}
	switchStmt   struct {
		tag    expr
		cases  []switchCase
		defIdx int // index of default case, -1 if none
	}
)

type switchCase struct {
	match expr // nil for default
	body  []stmt
}

func (varStmt) stmtNode()      {}
func (funcDeclStmt) stmtNode() {}
func (exprStmt) stmtNode()     {}
func (returnStmt) stmtNode()   {}
func (ifStmt) stmtNode()       {}
func (whileStmt) stmtNode()    {}
func (forStmt) stmtNode()      {}
func (forInStmt) stmtNode()    {}
func (blockStmt) stmtNode()    {}
func (breakStmt) stmtNode()    {}
func (continueStmt) stmtNode() {}
func (switchStmt) stmtNode()   {}

type expr interface{ exprNode() }

type (
	numLit struct {
		v float64
	}
	strLit struct {
		v string
	}
	boolLit struct {
		v bool
	}
	nullLit      struct{}
	undefinedLit struct{}
	regexLit     struct {
		pattern string
		flags   string
	}
	identExpr struct {
		name string
		line int
	}
	thisExpr struct{}
	arrayLit struct {
		elems []expr
	}
	objectLit struct {
		keys []string
		vals []expr
	}
	funcLit struct {
		name   string // optional
		params []string
		body   []stmt
	}
	callExpr struct {
		callee expr
		args   []expr
		line   int
	}
	newExpr struct {
		callee expr
		args   []expr
		line   int
	}
	memberExpr struct {
		obj  expr
		name string
		line int
	}
	indexExpr struct {
		obj  expr
		idx  expr
		line int
	}
	binExpr struct {
		op   string
		l, r expr
		line int
	}
	logicalExpr struct {
		op   string // && or ||
		l, r expr
	}
	unaryExpr struct {
		op string // - ! ~ typeof delete +
		x  expr
	}
	updateExpr struct {
		op     string // ++ or --
		prefix bool
		target expr
	}
	assignExpr struct {
		op     string // =, +=, ...
		target expr   // identExpr, memberExpr or indexExpr
		value  expr
		line   int
	}
	condExpr struct {
		cond, then, els expr
	}
)

func (numLit) exprNode()       {}
func (strLit) exprNode()       {}
func (boolLit) exprNode()      {}
func (nullLit) exprNode()      {}
func (undefinedLit) exprNode() {}
func (regexLit) exprNode()     {}
func (identExpr) exprNode()    {}
func (thisExpr) exprNode()     {}
func (arrayLit) exprNode()     {}
func (objectLit) exprNode()    {}
func (funcLit) exprNode()      {}
func (callExpr) exprNode()     {}
func (newExpr) exprNode()      {}
func (memberExpr) exprNode()   {}
func (indexExpr) exprNode()    {}
func (binExpr) exprNode()      {}
func (logicalExpr) exprNode()  {}
func (unaryExpr) exprNode()    {}
func (updateExpr) exprNode()   {}
func (assignExpr) exprNode()   {}
func (condExpr) exprNode()     {}
