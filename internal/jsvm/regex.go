package jsvm

import (
	"strings"

	"cycada/internal/sim/vclock"
)

// A small backtracking regular-expression engine standing in for WebKit's
// YARR. Supported syntax: literals, '.', escapes (\d \D \w \W \s \S and
// escaped metacharacters), character classes with ranges and negation,
// anchors ^ $, groups, alternation, and the greedy quantifiers * + ? {m,n}.
//
// The matcher counts backtracking steps; the engine charges each step at
// the YARR-JIT rate or the interpreted rate depending on its mode, which is
// what makes the regexp category of Figure 5 collapse hardest when the Mach
// VM bug disables JIT.

type reProg struct {
	alt        [][]reNode
	ignoreCase bool
}

type reNode interface{ reNode() }

type (
	reChar struct {
		c byte
	}
	reAny   struct{}
	reClass struct {
		negated bool
		ranges  []reRange
	}
	reGroup struct {
		alt [][]reNode
	}
	reRepeat struct {
		node     reNode
		min, max int // max -1 = unbounded
	}
	reStart struct{}
	reEnd   struct{}
)

type reRange struct{ lo, hi byte }

func (reChar) reNode()   {}
func (reAny) reNode()    {}
func (reClass) reNode()  {}
func (reGroup) reNode()  {}
func (reRepeat) reNode() {}
func (reStart) reNode()  {}
func (reEnd) reNode()    {}

// RegexError is a regex compilation failure.
type RegexError struct{ Msg string }

func (e *RegexError) Error() string { return "SyntaxError: invalid regular expression: " + e.Msg }

type reParser struct {
	src []byte
	pos int
}

func compileRegexProg(pattern, flags string) (*reProg, error) {
	p := &reParser{src: []byte(pattern)}
	alt, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, &RegexError{Msg: "unexpected )"}
	}
	return &reProg{alt: alt, ignoreCase: strings.Contains(flags, "i")}, nil
}

func (p *reParser) alternation() ([][]reNode, error) {
	var alts [][]reNode
	for {
		seq, err := p.sequence()
		if err != nil {
			return nil, err
		}
		alts = append(alts, seq)
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
			continue
		}
		return alts, nil
	}
}

func (p *reParser) sequence() ([]reNode, error) {
	var out []reNode
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		n, err := p.atom()
		if err != nil {
			return nil, err
		}
		n, err = p.quantify(n)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (p *reParser) atom() (reNode, error) {
	c := p.src[p.pos]
	switch c {
	case '^':
		p.pos++
		return reStart{}, nil
	case '$':
		p.pos++
		return reEnd{}, nil
	case '.':
		p.pos++
		return reAny{}, nil
	case '(':
		p.pos++
		// Accept and ignore (?: non-capturing markers.
		if p.pos+1 < len(p.src) && p.src[p.pos] == '?' && p.src[p.pos+1] == ':' {
			p.pos += 2
		}
		alt, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, &RegexError{Msg: "missing )"}
		}
		p.pos++
		return reGroup{alt: alt}, nil
	case '[':
		return p.class()
	case '\\':
		p.pos++
		if p.pos >= len(p.src) {
			return nil, &RegexError{Msg: "trailing backslash"}
		}
		e := p.src[p.pos]
		p.pos++
		if cls, ok := escapeClass(e); ok {
			return cls, nil
		}
		switch e {
		case 'n':
			return reChar{c: '\n'}, nil
		case 't':
			return reChar{c: '\t'}, nil
		case 'r':
			return reChar{c: '\r'}, nil
		default:
			return reChar{c: e}, nil
		}
	case '*', '+', '?':
		return nil, &RegexError{Msg: "nothing to repeat"}
	default:
		p.pos++
		return reChar{c: c}, nil
	}
}

func escapeClass(e byte) (reNode, bool) {
	switch e {
	case 'd':
		return reClass{ranges: []reRange{{'0', '9'}}}, true
	case 'D':
		return reClass{negated: true, ranges: []reRange{{'0', '9'}}}, true
	case 'w':
		return reClass{ranges: wordRanges}, true
	case 'W':
		return reClass{negated: true, ranges: wordRanges}, true
	case 's':
		return reClass{ranges: spaceRanges}, true
	case 'S':
		return reClass{negated: true, ranges: spaceRanges}, true
	default:
		return nil, false
	}
}

var (
	wordRanges  = []reRange{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}
	spaceRanges = []reRange{{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}, {'\f', '\f'}, {'\v', '\v'}}
)

func (p *reParser) class() (reNode, error) {
	p.pos++ // [
	cls := reClass{}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		cls.negated = true
		p.pos++
	}
	for {
		if p.pos >= len(p.src) {
			return nil, &RegexError{Msg: "missing ]"}
		}
		c := p.src[p.pos]
		if c == ']' {
			p.pos++
			return cls, nil
		}
		if c == '\\' {
			p.pos++
			if p.pos >= len(p.src) {
				return nil, &RegexError{Msg: "trailing backslash in class"}
			}
			e := p.src[p.pos]
			p.pos++
			if sub, ok := escapeClass(e); ok {
				cls.ranges = append(cls.ranges, sub.(reClass).ranges...)
				continue
			}
			switch e {
			case 'n':
				e = '\n'
			case 't':
				e = '\t'
			case 'r':
				e = '\r'
			}
			cls.ranges = append(cls.ranges, reRange{e, e})
			continue
		}
		p.pos++
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			hi := p.src[p.pos+1]
			p.pos += 2
			cls.ranges = append(cls.ranges, reRange{c, hi})
			continue
		}
		cls.ranges = append(cls.ranges, reRange{c, c})
	}
}

func (p *reParser) quantify(n reNode) (reNode, error) {
	if p.pos >= len(p.src) {
		return n, nil
	}
	switch p.src[p.pos] {
	case '*':
		p.pos++
		return reRepeat{node: n, min: 0, max: -1}, nil
	case '+':
		p.pos++
		return reRepeat{node: n, min: 1, max: -1}, nil
	case '?':
		p.pos++
		return reRepeat{node: n, min: 0, max: 1}, nil
	case '{':
		start := p.pos
		p.pos++
		m, ok1 := p.number()
		n2 := m
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			if p.pos < len(p.src) && p.src[p.pos] == '}' {
				n2 = -1
			} else {
				var ok2 bool
				n2, ok2 = p.number()
				if !ok2 {
					p.pos = start
					return n, nil
				}
			}
		}
		if !ok1 || p.pos >= len(p.src) || p.src[p.pos] != '}' {
			p.pos = start
			return n, nil
		}
		p.pos++
		return reRepeat{node: n, min: m, max: n2}, nil
	default:
		return n, nil
	}
}

func (p *reParser) number() (int, bool) {
	start := p.pos
	n := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		n = n*10 + int(p.src[p.pos]-'0')
		p.pos++
	}
	return n, p.pos > start
}

// --- Matching ---

type reMatcher struct {
	s          string
	ignoreCase bool
	steps      int
	limit      int
}

const reStepLimit = 5_000_000

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 32
	}
	return c
}

func (m *reMatcher) matchAlt(alt [][]reNode, pos int, k func(int) bool) bool {
	for _, seq := range alt {
		if m.matchSeq(seq, 0, pos, k) {
			return true
		}
	}
	return false
}

func (m *reMatcher) matchSeq(seq []reNode, i, pos int, k func(int) bool) bool {
	m.steps++
	if m.steps > m.limit {
		return false
	}
	if i == len(seq) {
		return k(pos)
	}
	next := func(p int) bool { return m.matchSeq(seq, i+1, p, k) }
	switch n := seq[i].(type) {
	case reChar:
		if pos < len(m.s) && m.charEq(m.s[pos], n.c) {
			return next(pos + 1)
		}
		return false
	case reAny:
		if pos < len(m.s) && m.s[pos] != '\n' {
			return next(pos + 1)
		}
		return false
	case reClass:
		if pos < len(m.s) && m.classMatch(n, m.s[pos]) {
			return next(pos + 1)
		}
		return false
	case reStart:
		if pos == 0 {
			return next(pos)
		}
		return false
	case reEnd:
		if pos == len(m.s) {
			return next(pos)
		}
		return false
	case reGroup:
		return m.matchAlt(n.alt, pos, next)
	case reRepeat:
		return m.matchRepeat(n, pos, next)
	default:
		return false
	}
}

func (m *reMatcher) matchRepeat(r reRepeat, pos int, k func(int) bool) bool {
	// Greedy: consume as many as possible, then backtrack.
	var rec func(count, p int) bool
	rec = func(count, p int) bool {
		m.steps++
		if m.steps > m.limit {
			return false
		}
		if r.max < 0 || count < r.max {
			matched := m.matchOne(r.node, p, func(p2 int) bool {
				if p2 == p { // zero-width progress guard
					return false
				}
				return rec(count+1, p2)
			})
			if matched {
				return true
			}
		}
		if count >= r.min {
			return k(p)
		}
		return false
	}
	return rec(0, pos)
}

func (m *reMatcher) matchOne(n reNode, pos int, k func(int) bool) bool {
	return m.matchSeq([]reNode{n}, 0, pos, k)
}

func (m *reMatcher) charEq(a, b byte) bool {
	if m.ignoreCase {
		return lowerByte(a) == lowerByte(b)
	}
	return a == b
}

func (m *reMatcher) classMatch(c reClass, b byte) bool {
	in := false
	for _, r := range c.ranges {
		lo, hi := r.lo, r.hi
		if m.ignoreCase {
			if lowerByte(b) >= lowerByte(lo) && lowerByte(b) <= lowerByte(hi) {
				in = true
				break
			}
		}
		if b >= lo && b <= hi {
			in = true
			break
		}
	}
	return in != c.negated
}

// --- Engine-level regex entry points (charging per step) ---

func (e *Engine) compileRegex(pattern, flags string) (*Regexp, error) {
	prog, err := compileRegexProg(pattern, flags)
	if err != nil {
		return nil, err
	}
	return &Regexp{Source: pattern, Flags: flags, prog: prog}, nil
}

func (e *Engine) chargeRegexSteps(steps int) {
	c := e.t.Costs()
	per := c.RegexStepSlow
	if e.jit {
		per = c.RegexStepFast
	}
	e.t.ChargeCPU(vclock.Duration(steps) * per)
	e.regexSteps += int64(steps)
}

// regexSearch finds the leftmost match at or after from; start = -1 when
// there is no match.
func (e *Engine) regexSearch(re *Regexp, s string, from int) (start, end int, err error) {
	m := &reMatcher{s: s, ignoreCase: re.prog.ignoreCase, limit: reStepLimit}
	defer func() { e.chargeRegexSteps(m.steps) }()
	for p := from; p <= len(s); p++ {
		endPos := -1
		if m.matchAlt(re.prog.alt, p, func(e2 int) bool { endPos = e2; return true }) {
			return p, endPos, nil
		}
		if m.steps > m.limit {
			return -1, 0, &RuntimeError{Msg: "regular expression too complex"}
		}
	}
	return -1, 0, nil
}

// regexMatchAll returns all (global-flag style) matches.
func (e *Engine) regexMatchAll(re *Regexp, s string) ([]string, error) {
	var out []string
	pos := 0
	for pos <= len(s) {
		start, end, err := e.regexSearch(re, s, pos)
		if err != nil {
			return nil, err
		}
		if start < 0 {
			break
		}
		out = append(out, s[start:end])
		if !re.Global() {
			break
		}
		if end == start {
			end++
		}
		pos = end
	}
	return out, nil
}

// regexReplace replaces the first (or all with /g) matches.
func (e *Engine) regexReplace(re *Regexp, s, repl string) (string, error) {
	var b strings.Builder
	pos := 0
	for pos <= len(s) {
		start, end, err := e.regexSearch(re, s, pos)
		if err != nil {
			return "", err
		}
		if start < 0 {
			break
		}
		b.WriteString(s[pos:start])
		b.WriteString(repl)
		if end == start {
			if start < len(s) {
				b.WriteByte(s[start])
			}
			end++
		}
		pos = end
		if !re.Global() {
			break
		}
	}
	if pos <= len(s) {
		b.WriteString(s[min(pos, len(s)):])
	}
	return b.String(), nil
}

// regexSplit splits s around matches.
func (e *Engine) regexSplit(re *Regexp, s string) ([]string, error) {
	var out []string
	pos := 0
	for pos <= len(s) {
		start, end, err := e.regexSearch(re, s, pos)
		if err != nil {
			return nil, err
		}
		if start < 0 || end == start {
			break
		}
		out = append(out, s[pos:start])
		pos = end
	}
	out = append(out, s[min(pos, len(s)):])
	return out, nil
}
