package jsvm

import (
	"fmt"
	"math"

	"cycada/internal/sim/vclock"
)

// RuntimeError is a JS execution failure.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("TypeError: line %d: %s", e.Line, e.Msg)
	}
	return "TypeError: " + e.Msg
}

// scope is a lexical environment record.
type scope struct {
	vars   map[string]Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: map[string]Value{}, parent: parent}
}

func (s *scope) lookup(name string) (Value, bool) {
	for e := s; e != nil; e = e.parent {
		if v, ok := e.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) assign(name string, v Value) bool {
	for e := s; e != nil; e = e.parent {
		if _, ok := e.vars[name]; ok {
			e.vars[name] = v
			return true
		}
	}
	return false
}

type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// interp executes the AST, charging virtual time per operation according to
// the engine's execution mode (interpreter vs baseline JIT).
type interp struct {
	e      *Engine
	global *scope

	pendingOps int
	steps      int64
	maxSteps   int64
	callDepth  int
}

const (
	chargeBatch  = 1 << 10
	maxCallDepth = 200
)

func (ip *interp) op() error {
	ip.pendingOps++
	ip.steps++
	if ip.pendingOps >= chargeBatch {
		ip.flushOps()
	}
	if ip.maxSteps > 0 && ip.steps > ip.maxSteps {
		return &RuntimeError{Msg: "script exceeded step budget"}
	}
	return nil
}

func (ip *interp) flushOps() {
	if ip.pendingOps == 0 {
		return
	}
	c := ip.e.t.Costs()
	per := c.JSOpInterp
	if ip.e.jit {
		per = c.JSOpJIT
	}
	ip.e.t.ChargeCPU(vclock.Duration(ip.pendingOps) * per)
	ip.e.opsRun += int64(ip.pendingOps)
	ip.pendingOps = 0
}

// hoist declares the function declarations of a statement list.
func (ip *interp) hoist(list []stmt, env *scope) {
	for _, s := range list {
		if fd, ok := s.(funcDeclStmt); ok {
			env.vars[fd.name] = &Function{lit: fd.fn, env: env}
		}
	}
}

func (ip *interp) execBlock(list []stmt, env *scope) (Value, ctrl, error) {
	ip.hoist(list, env)
	var last Value = Undefined{}
	for _, s := range list {
		v, c, err := ip.exec(s, env)
		if err != nil || c != ctrlNone {
			return v, c, err
		}
		last = v
	}
	return last, ctrlNone, nil
}

func (ip *interp) exec(s stmt, env *scope) (Value, ctrl, error) {
	if err := ip.op(); err != nil {
		return nil, ctrlNone, err
	}
	switch st := s.(type) {
	case blockStmt:
		return ip.execBlock(st.list, env)
	case varStmt:
		for _, d := range st.decls {
			var v Value = Undefined{}
			if d.init != nil {
				x, err := ip.eval(d.init, env)
				if err != nil {
					return nil, ctrlNone, err
				}
				v = x
			}
			env.vars[d.name] = v
		}
		return Undefined{}, ctrlNone, nil
	case funcDeclStmt:
		env.vars[st.name] = &Function{lit: st.fn, env: env}
		return Undefined{}, ctrlNone, nil
	case exprStmt:
		v, err := ip.eval(st.x, env)
		return v, ctrlNone, err
	case returnStmt:
		if st.x == nil {
			return Undefined{}, ctrlReturn, nil
		}
		v, err := ip.eval(st.x, env)
		if err != nil {
			return nil, ctrlNone, err
		}
		return v, ctrlReturn, nil
	case ifStmt:
		c, err := ip.eval(st.cond, env)
		if err != nil {
			return nil, ctrlNone, err
		}
		if truthy(c) {
			return ip.exec(st.then, env)
		}
		if st.els != nil {
			return ip.exec(st.els, env)
		}
		return Undefined{}, ctrlNone, nil
	case whileStmt:
		first := st.post // do/while runs the body once before testing
		for {
			if !first {
				c, err := ip.eval(st.cond, env)
				if err != nil {
					return nil, ctrlNone, err
				}
				if !truthy(c) {
					return Undefined{}, ctrlNone, nil
				}
			}
			first = false
			v, c, err := ip.exec(st.body, env)
			if err != nil {
				return nil, ctrlNone, err
			}
			if c == ctrlBreak {
				return Undefined{}, ctrlNone, nil
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if st.post {
				cv, err := ip.eval(st.cond, env)
				if err != nil {
					return nil, ctrlNone, err
				}
				if !truthy(cv) {
					return Undefined{}, ctrlNone, nil
				}
			}
		}
	case forStmt:
		if st.init != nil {
			if _, _, err := ip.exec(st.init, env); err != nil {
				return nil, ctrlNone, err
			}
		}
		for {
			if st.cond != nil {
				c, err := ip.eval(st.cond, env)
				if err != nil {
					return nil, ctrlNone, err
				}
				if !truthy(c) {
					return Undefined{}, ctrlNone, nil
				}
			}
			v, c, err := ip.exec(st.body, env)
			if err != nil {
				return nil, ctrlNone, err
			}
			if c == ctrlBreak {
				return Undefined{}, ctrlNone, nil
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if st.post != nil {
				if _, err := ip.eval(st.post, env); err != nil {
					return nil, ctrlNone, err
				}
			}
		}
	case forInStmt:
		obj, err := ip.eval(st.obj, env)
		if err != nil {
			return nil, ctrlNone, err
		}
		var keys []string
		switch o := obj.(type) {
		case *Object:
			keys = append(keys, o.Keys()...)
		case *Array:
			for i := range o.Elems {
				keys = append(keys, formatNumber(float64(i)))
			}
		}
		for _, k := range keys {
			if !env.assign(st.varName, k) {
				env.vars[st.varName] = k
			}
			v, c, err := ip.exec(st.body, env)
			if err != nil {
				return nil, ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return v, c, nil
			}
		}
		return Undefined{}, ctrlNone, nil
	case breakStmt:
		return Undefined{}, ctrlBreak, nil
	case continueStmt:
		return Undefined{}, ctrlContinue, nil
	case switchStmt:
		tag, err := ip.eval(st.tag, env)
		if err != nil {
			return nil, ctrlNone, err
		}
		start := -1
		for i, c := range st.cases {
			if c.match == nil {
				continue
			}
			m, err := ip.eval(c.match, env)
			if err != nil {
				return nil, ctrlNone, err
			}
			if strictEquals(tag, m) {
				start = i
				break
			}
		}
		if start == -1 {
			start = st.defIdx
		}
		if start == -1 {
			return Undefined{}, ctrlNone, nil
		}
		for i := start; i < len(st.cases); i++ {
			for _, s2 := range st.cases[i].body {
				v, c, err := ip.exec(s2, env)
				if err != nil {
					return nil, ctrlNone, err
				}
				if c == ctrlBreak {
					return Undefined{}, ctrlNone, nil
				}
				if c == ctrlReturn || c == ctrlContinue {
					return v, c, nil
				}
			}
		}
		return Undefined{}, ctrlNone, nil
	default:
		return nil, ctrlNone, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
	}
}

func (ip *interp) eval(x expr, env *scope) (Value, error) {
	if err := ip.op(); err != nil {
		return nil, err
	}
	switch ex := x.(type) {
	case numLit:
		return ex.v, nil
	case strLit:
		return ex.v, nil
	case boolLit:
		return ex.v, nil
	case nullLit:
		return Null{}, nil
	case undefinedLit:
		return Undefined{}, nil
	case regexLit:
		return ip.e.compileRegex(ex.pattern, ex.flags)
	case identExpr:
		if v, ok := env.lookup(ex.name); ok {
			return v, nil
		}
		return nil, &RuntimeError{Line: ex.line, Msg: ex.name + " is not defined"}
	case thisExpr:
		if v, ok := env.lookup("this"); ok {
			return v, nil
		}
		return Undefined{}, nil
	case arrayLit:
		arr := &Array{Elems: make([]Value, len(ex.elems))}
		for i, e := range ex.elems {
			v, err := ip.eval(e, env)
			if err != nil {
				return nil, err
			}
			arr.Elems[i] = v
		}
		return arr, nil
	case objectLit:
		obj := NewObject()
		for i, k := range ex.keys {
			v, err := ip.eval(ex.vals[i], env)
			if err != nil {
				return nil, err
			}
			obj.Set(k, v)
		}
		return obj, nil
	case funcLit:
		return &Function{lit: &ex, env: env}, nil
	case condExpr:
		c, err := ip.eval(ex.cond, env)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return ip.eval(ex.then, env)
		}
		return ip.eval(ex.els, env)
	case logicalExpr:
		l, err := ip.eval(ex.l, env)
		if err != nil {
			return nil, err
		}
		if ex.op == "&&" {
			if !truthy(l) {
				return l, nil
			}
		} else if truthy(l) {
			return l, nil
		}
		return ip.eval(ex.r, env)
	case unaryExpr:
		if ex.op == "delete" {
			return ip.evalDelete(ex.x, env)
		}
		if ex.op == "typeof" {
			if id, ok := ex.x.(identExpr); ok {
				if v, found := env.lookup(id.name); found {
					return typeOf(v), nil
				}
				return "undefined", nil
			}
		}
		v, err := ip.eval(ex.x, env)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			return -toNumber(v), nil
		case "+":
			return toNumber(v), nil
		case "!":
			return !truthy(v), nil
		case "~":
			return float64(^toInt32(v)), nil
		case "typeof":
			return typeOf(v), nil
		}
		return nil, &RuntimeError{Msg: "unknown unary " + ex.op}
	case updateExpr:
		old, err := ip.eval(ex.target, env)
		if err != nil {
			return nil, err
		}
		n := toNumber(old)
		var nv float64
		if ex.op == "++" {
			nv = n + 1
		} else {
			nv = n - 1
		}
		if err := ip.store(ex.target, env, nv); err != nil {
			return nil, err
		}
		if ex.prefix {
			return nv, nil
		}
		return n, nil
	case assignExpr:
		var v Value
		var err error
		if ex.op == "=" {
			v, err = ip.eval(ex.value, env)
		} else {
			var cur Value
			cur, err = ip.eval(ex.target, env)
			if err != nil {
				return nil, err
			}
			var rhs Value
			rhs, err = ip.eval(ex.value, env)
			if err != nil {
				return nil, err
			}
			v, err = ip.binop(ex.op[:len(ex.op)-1], cur, rhs, ex.line)
		}
		if err != nil {
			return nil, err
		}
		if err := ip.store(ex.target, env, v); err != nil {
			return nil, err
		}
		return v, nil
	case binExpr:
		l, err := ip.eval(ex.l, env)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(ex.r, env)
		if err != nil {
			return nil, err
		}
		return ip.binop(ex.op, l, r, ex.line)
	case memberExpr:
		obj, err := ip.eval(ex.obj, env)
		if err != nil {
			return nil, err
		}
		return ip.getMember(obj, ex.name, ex.line)
	case indexExpr:
		obj, err := ip.eval(ex.obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := ip.eval(ex.idx, env)
		if err != nil {
			return nil, err
		}
		return ip.getIndex(obj, idx, ex.line)
	case callExpr:
		return ip.evalCall(ex, env)
	case newExpr:
		return ip.evalNew(ex, env)
	default:
		return nil, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", x)}
	}
}

func (ip *interp) evalDelete(target expr, env *scope) (Value, error) {
	switch tx := target.(type) {
	case memberExpr:
		obj, err := ip.eval(tx.obj, env)
		if err != nil {
			return nil, err
		}
		if o, ok := obj.(*Object); ok {
			o.Delete(tx.name)
		}
		return true, nil
	case indexExpr:
		obj, err := ip.eval(tx.obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := ip.eval(tx.idx, env)
		if err != nil {
			return nil, err
		}
		if o, ok := obj.(*Object); ok {
			o.Delete(ToString(idx))
		}
		return true, nil
	default:
		return true, nil
	}
}

func (ip *interp) store(target expr, env *scope, v Value) error {
	switch tx := target.(type) {
	case identExpr:
		if !env.assign(tx.name, v) {
			// Implicit global, like sloppy-mode JS.
			ip.global.vars[tx.name] = v
		}
		return nil
	case memberExpr:
		obj, err := ip.eval(tx.obj, env)
		if err != nil {
			return err
		}
		return ip.setMember(obj, tx.name, v, tx.line)
	case indexExpr:
		obj, err := ip.eval(tx.obj, env)
		if err != nil {
			return err
		}
		idx, err := ip.eval(tx.idx, env)
		if err != nil {
			return err
		}
		return ip.setIndex(obj, idx, v, tx.line)
	default:
		return &RuntimeError{Msg: "invalid assignment target"}
	}
}

func (ip *interp) binop(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "+":
		_, ls := l.(string)
		_, rs := r.(string)
		if ls || rs || isConcatty(l) || isConcatty(r) {
			return ToString(l) + ToString(r), nil
		}
		return toNumber(l) + toNumber(r), nil
	case "-":
		return toNumber(l) - toNumber(r), nil
	case "*":
		return toNumber(l) * toNumber(r), nil
	case "/":
		return toNumber(l) / toNumber(r), nil
	case "%":
		return math.Mod(toNumber(l), toNumber(r)), nil
	case "<", ">", "<=", ">=":
		if a, ok := l.(string); ok {
			if b, ok := r.(string); ok {
				switch op {
				case "<":
					return a < b, nil
				case ">":
					return a > b, nil
				case "<=":
					return a <= b, nil
				default:
					return a >= b, nil
				}
			}
		}
		a, b := toNumber(l), toNumber(r)
		switch op {
		case "<":
			return a < b, nil
		case ">":
			return a > b, nil
		case "<=":
			return a <= b, nil
		default:
			return a >= b, nil
		}
	case "==":
		return looseEquals(l, r), nil
	case "!=":
		return !looseEquals(l, r), nil
	case "===":
		return strictEquals(l, r), nil
	case "!==":
		return !strictEquals(l, r), nil
	case "&":
		return float64(toInt32(l) & toInt32(r)), nil
	case "|":
		return float64(toInt32(l) | toInt32(r)), nil
	case "^":
		return float64(toInt32(l) ^ toInt32(r)), nil
	case "<<":
		return float64(toInt32(l) << (toUint32(r) & 31)), nil
	case ">>":
		return float64(toInt32(l) >> (toUint32(r) & 31)), nil
	case ">>>":
		return float64(toUint32(l) >> (toUint32(r) & 31)), nil
	case "in":
		switch o := r.(type) {
		case *Object:
			_, ok := o.Get(ToString(l))
			return ok, nil
		case *Array:
			i := int(toNumber(l))
			return i >= 0 && i < len(o.Elems), nil
		}
		return false, nil
	default:
		return nil, &RuntimeError{Line: line, Msg: "unknown operator " + op}
	}
}

func isConcatty(v Value) bool {
	switch v.(type) {
	case *Object, *Array, Undefined, Null, *Function, *Builtin, *Regexp:
		return true
	}
	return false
}

func (ip *interp) evalCall(ex callExpr, env *scope) (Value, error) {
	var this Value = Undefined{}
	var fn Value
	var err error
	switch callee := ex.callee.(type) {
	case memberExpr:
		this, err = ip.eval(callee.obj, env)
		if err != nil {
			return nil, err
		}
		fn, err = ip.getMember(this, callee.name, callee.line)
	case indexExpr:
		this, err = ip.eval(callee.obj, env)
		if err != nil {
			return nil, err
		}
		var idx Value
		idx, err = ip.eval(callee.idx, env)
		if err != nil {
			return nil, err
		}
		fn, err = ip.getIndex(this, idx, callee.line)
	default:
		fn, err = ip.eval(ex.callee, env)
	}
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(ex.args))
	for i, a := range ex.args {
		v, err := ip.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return ip.callValue(fn, this, args, ex.line)
}

func (ip *interp) callValue(fn Value, this Value, args []Value, line int) (Value, error) {
	ip.callDepth++
	defer func() { ip.callDepth-- }()
	if ip.callDepth > maxCallDepth {
		return nil, &RuntimeError{Line: line, Msg: "maximum call stack size exceeded"}
	}
	switch f := fn.(type) {
	case *Function:
		env := newScope(f.env)
		env.vars["this"] = this
		if f.lit.name != "" {
			// Named function expressions see their own name in scope.
			env.vars[f.lit.name] = f
		}
		for i, p := range f.lit.params {
			if i < len(args) {
				env.vars[p] = args[i]
			} else {
				env.vars[p] = Undefined{}
			}
		}
		argsArr := &Array{Elems: append([]Value(nil), args...)}
		env.vars["arguments"] = argsArr
		v, c, err := ip.execBlock(f.lit.body, env)
		if err != nil {
			return nil, err
		}
		if c == ctrlReturn {
			return v, nil
		}
		return Undefined{}, nil
	case *Builtin:
		return f.Fn(ip, this, args)
	default:
		return nil, &RuntimeError{Line: line, Msg: ToString(fn) + " is not a function"}
	}
}

func (ip *interp) evalNew(ex newExpr, env *scope) (Value, error) {
	fn, err := ip.eval(ex.callee, env)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(ex.args))
	for i, a := range ex.args {
		v, err := ip.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	// Builtin constructors (Array, Date, RegExp) construct directly.
	if b, ok := fn.(*Builtin); ok {
		return b.Fn(ip, NewObject(), args)
	}
	this := NewObject()
	ret, err := ip.callValue(fn, this, args, ex.line)
	if err != nil {
		return nil, err
	}
	switch ret.(type) {
	case *Object, *Array:
		return ret, nil
	default:
		return this, nil
	}
}
