// Package jsvm implements the simulation's JavaScript engine: a
// JavaScriptCore stand-in interpreting a JavaScript subset large enough to
// run the SunSpider-like suite (Figure 5) and WebKit's page scripts.
//
// The engine has two execution modes mirroring JSC: baseline-"JIT" and
// interpreter. At construction it requests writable executable memory from
// the kernel, exactly like JSC's executable allocator; under Cycada the Mach
// VM memory bug (paper §9) denies that mapping and the engine falls back to
// the interpreter, charging ~4.5x more virtual time per operation — which
// reproduces the Figure 5 slowdown, including the much larger regexp
// penalty (the YARR regex JIT is lost too).
package jsvm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNum
	tokStr
	tokIdent
	tokKeyword
	tokPunct
	tokRegex
)

type token struct {
	kind  tokKind
	text  string
	num   float64
	line  int
	flags string // regex flags
}

// SyntaxError is a parse failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("SyntaxError: line %d: %s", e.Line, e.Msg) }

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "for": true, "break": true, "continue": true, "true": true,
	"false": true, "null": true, "undefined": true, "new": true, "typeof": true,
	"do": true, "switch": true, "case": true, "default": true, "in": true,
	"this": true, "delete": true,
}

type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
	// prev tracks the previous significant token to disambiguate regex
	// literals from division.
	prev token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		case c == '/' && l.regexAllowed():
			if err := l.lexRegex(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(c) || c == '_' || c == '$':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '$') {
				l.pos++
			}
			text := string(l.src[start:l.pos])
			if keywords[text] {
				l.emit(token{kind: tokKeyword, text: text, line: l.line})
			} else {
				l.emit(token{kind: tokIdent, text: text, line: l.line})
			}
		case unicode.IsDigit(c) || (c == '.' && unicode.IsDigit(l.peek(1))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) peek(n int) rune {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(t token) {
	l.prev = t
	l.toks = append(l.toks, t)
}

// regexAllowed reports whether a '/' here starts a regex literal (after an
// operator or keyword) rather than division (after a value).
func (l *lexer) regexAllowed() bool {
	switch l.prev.kind {
	case tokNum, tokStr, tokIdent, tokRegex:
		return false
	case tokKeyword:
		return l.prev.text != "this" && l.prev.text != "true" && l.prev.text != "false" && l.prev.text != "null"
	case tokPunct:
		return l.prev.text != ")" && l.prev.text != "]" && l.prev.text != "}"
	default:
		return true
	}
}

func (l *lexer) lexRegex() error {
	line := l.line
	l.pos++ // consume '/'
	var b strings.Builder
	inClass := false
	for {
		if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
			return &SyntaxError{Line: line, Msg: "unterminated regex literal"}
		}
		c := l.src[l.pos]
		if c == '\\' {
			b.WriteRune(c)
			l.pos++
			if l.pos < len(l.src) {
				b.WriteRune(l.src[l.pos])
				l.pos++
			}
			continue
		}
		if c == '[' {
			inClass = true
		}
		if c == ']' {
			inClass = false
		}
		if c == '/' && !inClass {
			l.pos++
			break
		}
		b.WriteRune(c)
		l.pos++
	}
	var flags strings.Builder
	for l.pos < len(l.src) && (l.src[l.pos] == 'g' || l.src[l.pos] == 'i' || l.src[l.pos] == 'm') {
		flags.WriteRune(l.src[l.pos])
		l.pos++
	}
	l.emit(token{kind: tokRegex, text: b.String(), flags: flags.String(), line: line})
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		var v uint64
		if _, err := fmt.Sscanf(string(l.src[start:l.pos]), "%v", &v); err != nil {
			if _, err2 := fmt.Sscanf(string(l.src[start+2:l.pos]), "%x", &v); err2 != nil {
				return &SyntaxError{Line: l.line, Msg: "bad hex literal"}
			}
		}
		l.emit(token{kind: tokNum, num: float64(v), line: l.line})
		return nil
	}
	for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	var f float64
	if _, err := fmt.Sscanf(string(l.src[start:l.pos]), "%g", &f); err != nil {
		return &SyntaxError{Line: l.line, Msg: "bad number literal"}
	}
	l.emit(token{kind: tokNum, num: f, line: l.line})
	return nil
}

func isHex(c rune) bool {
	return unicode.IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) lexString(quote rune) error {
	line := l.line
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return &SyntaxError{Line: line, Msg: "unterminated string"}
		}
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			break
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return &SyntaxError{Line: line, Msg: "unterminated escape"}
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case 'r':
				b.WriteRune('\r')
			case '\\':
				b.WriteRune('\\')
			case '\'':
				b.WriteRune('\'')
			case '"':
				b.WriteRune('"')
			case '0':
				b.WriteRune(0)
			case 'u':
				if l.pos+4 < len(l.src) {
					var v uint32
					fmt.Sscanf(string(l.src[l.pos+1:l.pos+5]), "%04x", &v)
					b.WriteRune(rune(v))
					l.pos += 4
				}
			default:
				b.WriteRune(l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			l.line++
		}
		b.WriteRune(c)
		l.pos++
	}
	l.emit(token{kind: tokStr, text: b.String(), line: line})
	return nil
}

var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "&&", "||", "==", "!=", "<=",
	">=", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<",
	">>", "{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":", "<", ">",
	"+", "-", "*", "/", "%", "=", "!", "&", "|", "^", "~",
}

func (l *lexer) lexPunct() error {
	rest := string(l.src[l.pos:min(l.pos+4, len(l.src))])
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			l.emit(token{kind: tokPunct, text: p, line: l.line})
			l.pos += len(p)
			return nil
		}
	}
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf("unexpected character %q", l.src[l.pos])}
}
