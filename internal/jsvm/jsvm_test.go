package jsvm

import (
	"math"
	"strings"
	"testing"

	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func newThread(t *testing.T, denyJIT bool) *kernel.Thread {
	t.Helper()
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7(), Flavor: vclock.KernelCycada})
	p, err := k.NewProcess("js", kernel.PersonaIOS, kernel.PersonaAndroid)
	if err != nil {
		t.Fatal(err)
	}
	if denyJIT {
		p.Mem().DenyExecutable(true)
	}
	return p.Main()
}

func run(t *testing.T, src string) Value {
	t.Helper()
	e := New(newThread(t, false))
	v, err := e.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

func num(t *testing.T, src string) float64 {
	t.Helper()
	v := run(t, src)
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("Run(%q) = %v (%T), want number", src, v, v)
	}
	return f
}

func TestArithmeticAndPrecedence(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":       7,
		"(1 + 2) * 3":     9,
		"10 % 3":          1,
		"2 * 3 + 4 * 5":   26,
		"-5 + 3":          -2,
		"1 << 4":          16,
		"255 >> 4":        15,
		"-1 >>> 28":       15,
		"5 & 3":           1,
		"5 | 3":           7,
		"5 ^ 3":           6,
		"~0":              -1,
		"1/0":             math.Inf(1),
		"3 < 5 ? 10 : 20": 10,
		"0x10 + 1":        17,
		"1e3 + 0.5":       1000.5,
	}
	for src, want := range cases {
		if got := num(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestStringsAndCoercion(t *testing.T) {
	if got := run(t, `"a" + 1 + 2`); got != "a12" {
		t.Errorf("string concat = %v", got)
	}
	if got := num(t, `"5" * "4"`); got != 20 {
		t.Errorf("numeric coercion = %v", got)
	}
	if got := run(t, `"abc".toUpperCase()`); got != "ABC" {
		t.Errorf("toUpperCase = %v", got)
	}
	if got := num(t, `"hello".length`); got != 5 {
		t.Errorf("length = %v", got)
	}
	if got := run(t, `"hello".substring(1, 3)`); got != "el" {
		t.Errorf("substring = %v", got)
	}
	if got := num(t, `"hello".charCodeAt(0)`); got != 104 {
		t.Errorf("charCodeAt = %v", got)
	}
	if got := run(t, `String.fromCharCode(104, 105)`); got != "hi" {
		t.Errorf("fromCharCode = %v", got)
	}
	if got := run(t, `"a,b,c".split(",").join("-")`); got != "a-b-c" {
		t.Errorf("split/join = %v", got)
	}
}

func TestEqualitySemantics(t *testing.T) {
	cases := map[string]bool{
		`1 == "1"`:           true,
		`1 === "1"`:          false,
		`null == undefined`:  true,
		`null === undefined`: false,
		`"a" != "b"`:         true,
		`1 !== 1`:            false,
		`true == 1`:          true,
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	got := num(t, `
function makeCounter() {
  var n = 0;
  return function() { n = n + 1; return n; };
}
var c = makeCounter();
c(); c();
c();
`)
	if got != 3 {
		t.Fatalf("closure counter = %v, want 3", got)
	}
}

func TestRecursion(t *testing.T) {
	if got := num(t, `
function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
fib(15);
`); got != 610 {
		t.Fatalf("fib(15) = %v, want 610", got)
	}
}

func TestDeepRecursionBounded(t *testing.T) {
	e := New(newThread(t, false))
	_, err := e.Run(`function f(){ return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "call stack") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestLoopsAndControlFlow(t *testing.T) {
	if got := num(t, `
var sum = 0;
for (var i = 0; i < 10; i++) {
  if (i == 3) continue;
  if (i == 8) break;
  sum += i;
}
sum;
`); got != 0+1+2+4+5+6+7 {
		t.Fatalf("loop sum = %v", got)
	}
	if got := num(t, `var n = 0; while (n < 5) { n++; } n;`); got != 5 {
		t.Fatalf("while = %v", got)
	}
	if got := num(t, `var n = 0; do { n++; } while (n < 3); n;`); got != 3 {
		t.Fatalf("do/while = %v", got)
	}
}

func TestSwitch(t *testing.T) {
	src := `
function f(x) {
  switch (x) {
  case 1: return "one";
  case 2:
  case 3: return "few";
  default: return "many";
  }
}
f(1) + "," + f(2) + "," + f(3) + "," + f(9);
`
	if got := run(t, src); got != "one,few,few,many" {
		t.Fatalf("switch = %v", got)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	if got := num(t, `var o = {a: 1, b: {c: 2}}; o.a + o.b.c;`); got != 3 {
		t.Fatalf("object access = %v", got)
	}
	if got := num(t, `var a = [1,2,3]; a.push(4); a[0] + a[3] + a.length;`); got != 9 {
		t.Fatalf("array ops = %v", got)
	}
	if got := run(t, `var a = [3,1,2]; a.sort(); a.join("")`); got != "123" {
		t.Fatalf("sort = %v", got)
	}
	if got := run(t, `var a = [3,1,20]; a.sort(function(x,y){return x-y;}); a.join(",")`); got != "1,3,20" {
		t.Fatalf("sort with comparator = %v", got)
	}
	if got := num(t, `
var o = {x: 1, y: 2, z: 3};
var sum = 0;
for (var k in o) { sum += o[k]; }
delete o.y;
var sum2 = 0;
for (var k2 in o) { sum2 += o[k2]; }
sum * 10 + sum2;
`); got != 64 {
		t.Fatalf("for-in/delete = %v", got)
	}
}

func TestThisAndNew(t *testing.T) {
	if got := num(t, `
function Point(x, y) { this.x = x; this.y = y; }
var p = new Point(3, 4);
p.x * 10 + p.y;
`); got != 34 {
		t.Fatalf("constructor = %v", got)
	}
	if got := num(t, `
var obj = { n: 7, get: function() { return this.n; } };
obj.get();
`); got != 7 {
		t.Fatalf("method this = %v", got)
	}
}

func TestTypeofAndUndefined(t *testing.T) {
	if got := run(t, `typeof 1`); got != "number" {
		t.Errorf("typeof 1 = %v", got)
	}
	if got := run(t, `typeof "x"`); got != "string" {
		t.Errorf("typeof string = %v", got)
	}
	if got := run(t, `typeof undeclaredVariable`); got != "undefined" {
		t.Errorf("typeof undeclared = %v", got)
	}
	if got := run(t, `typeof function(){}`); got != "function" {
		t.Errorf("typeof function = %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	e := New(newThread(t, false))
	for _, src := range []string{
		`undeclared + 1;`,
		`null.x;`,
		`var a; a.b;`,
		`(5)();`,
	} {
		if _, err := e.Run(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	e := New(newThread(t, false))
	for _, src := range []string{
		`var ;`,
		`function (){}`,
		`if (true {`,
		`"unterminated`,
		`1 = 2;`,
	} {
		if _, err := e.Run(src); err == nil {
			t.Errorf("no syntax error for %q", src)
		}
	}
}

func TestRegexBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`/ab+c/.test("xabbbcx")`, true},
		{`/ab+c/.test("ac")`, false},
		{`/^hello/.test("hello world")`, true},
		{`/^hello/.test("say hello")`, false},
		{`/world$/.test("hello world")`, true},
		{`/[0-9]+/.test("abc123")`, true},
		{`/[^0-9]/.test("123")`, false},
		{`/\d{3}-\d{4}/.test("555-1234")`, true},
		{`/cat|dog/.test("hotdog")`, true},
		{`/(ab)+/.test("ababab")`, true},
		{`/x?y/.test("y")`, true},
		{`/HELLO/i.test("hello")`, true},
		{`"a1b22c333".replace(/\d+/g, "#")`, "a#b#c#"},
		{`"one two  three".split(/\s+/).length`, float64(3)},
		{`"date: 2017-12-11".match(/\d+/g).join("/")`, "2017/12/11"},
		{`"hello world".search(/wor/)`, float64(6)},
	}
	for _, tc := range cases {
		if got := run(t, tc.src); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestRegexErrors(t *testing.T) {
	e := New(newThread(t, false))
	if _, err := e.Run(`/(/ .test("x")`); err == nil {
		t.Error("unbalanced group accepted")
	}
	if _, err := e.Run(`RegExp("[abc")`); err == nil {
		t.Error("unterminated class accepted")
	}
}

func TestJITGating(t *testing.T) {
	// With executable memory: JIT on.
	e := New(newThread(t, false))
	if !e.JITEnabled() {
		t.Fatal("JIT should be enabled when RWX memory is available")
	}
	// Under the Mach VM bug: interpreter fallback.
	e2 := New(newThread(t, true))
	if e2.JITEnabled() {
		t.Fatal("JIT enabled despite executable-memory denial")
	}
	// Explicitly disabled (the Figure 5 purple series).
	e3 := New(newThread(t, false), WithoutJIT())
	if e3.JITEnabled() {
		t.Fatal("WithoutJIT ignored")
	}
}

func TestInterpreterCostsMoreVirtualTime(t *testing.T) {
	src := `
var s = 0;
for (var i = 0; i < 5000; i++) { s += i & 7; }
s;
`
	thJIT := newThread(t, false)
	eJIT := New(thJIT)
	before := thJIT.VTime()
	if _, err := eJIT.Run(src); err != nil {
		t.Fatal(err)
	}
	jitCost := thJIT.VTime() - before

	thInt := newThread(t, true)
	eInt := New(thInt)
	before = thInt.VTime()
	if _, err := eInt.Run(src); err != nil {
		t.Fatal(err)
	}
	intCost := thInt.VTime() - before

	ratio := float64(intCost) / float64(jitCost)
	if ratio < 2.5 {
		t.Fatalf("interpreter/JIT cost ratio = %.2f, want > 2.5 (Figure 5 shape)", ratio)
	}
	if eJIT.OpsRun() != eInt.OpsRun() {
		t.Fatalf("op counts differ: %d vs %d", eJIT.OpsRun(), eInt.OpsRun())
	}
}

func TestRegexInterpreterPenaltyIsLarger(t *testing.T) {
	// The regexp category loses the most without JIT (YARR), Figure 5.
	src := `
var count = 0;
var re = /(a+)+b/;
for (var i = 0; i < 10; i++) {
  if (re.test("aaaaaaaaaaab")) count++;
  re.test("aaaaaaaaaac");
}
count;
`
	thJIT := newThread(t, false)
	eJIT := New(thJIT)
	before := thJIT.VTime()
	if _, err := eJIT.Run(src); err != nil {
		t.Fatal(err)
	}
	jitCost := float64(thJIT.VTime() - before)

	thInt := newThread(t, true)
	eInt := New(thInt)
	before = thInt.VTime()
	if _, err := eInt.Run(src); err != nil {
		t.Fatal(err)
	}
	intCost := float64(thInt.VTime() - before)

	if intCost/jitCost < 5 {
		t.Fatalf("regex interpreter/JIT ratio = %.2f, want > 5", intCost/jitCost)
	}
}

func TestPrintAndGlobals(t *testing.T) {
	e := New(newThread(t, false))
	if _, err := e.Run(`print("hello", 42);`); err != nil {
		t.Fatal(err)
	}
	if out := e.Output(); len(out) != 1 || out[0] != "hello 42" {
		t.Fatalf("output = %v", out)
	}
	e.SetGlobal("hostValue", float64(99))
	v, err := e.Run(`hostValue + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(100) {
		t.Fatalf("host global = %v", v)
	}
}

func TestCallFromHost(t *testing.T) {
	e := New(newThread(t, false))
	if _, err := e.Run(`function add(a, b) { return a + b; }`); err != nil {
		t.Fatal(err)
	}
	v, err := e.Call("add", float64(2), float64(3))
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(5) {
		t.Fatalf("Call add = %v", v)
	}
	if _, err := e.Call("missing"); err == nil {
		t.Fatal("calling missing function succeeded")
	}
}

func TestBuiltinLibrary(t *testing.T) {
	cases := map[string]float64{
		`Math.abs(-5)`:                           5,
		`Math.floor(3.7)`:                        3,
		`Math.max(1, 9, 4)`:                      9,
		`Math.min(3, -2, 8)`:                     -2,
		`Math.pow(2, 10)`:                        1024,
		`Math.round(2.5)`:                        3,
		`Math.sqrt(81)`:                          9,
		`parseInt("42")`:                         42,
		`parseInt("ff", 16)`:                     255,
		`parseInt("0x1f")`:                       31,
		`parseFloat("3.5abc")`:                   3.5,
		`(255).toString(16) == "ff" ? 1 : 0`:     1,
		`(3.14159).toFixed(2) == "3.14" ? 1 : 0`: 1,
	}
	for src, want := range cases {
		if got := num(t, src); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if got := run(t, `isNaN(parseInt("zz"))`); got != true {
		t.Error("isNaN(parseInt garbage) != true")
	}
}

func TestMathRandomDeterministic(t *testing.T) {
	e1 := New(newThread(t, false))
	e2 := New(newThread(t, false))
	v1, err := e1.Run(`Math.random() + Math.random();`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.Run(`Math.random() + Math.random();`)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("Math.random not deterministic across engines: %v vs %v", v1, v2)
	}
	r := num(t, `Math.random()`)
	if r < 0 || r >= 1 {
		t.Fatalf("Math.random out of range: %v", r)
	}
}

func TestStepBudget(t *testing.T) {
	e := New(newThread(t, false), WithStepBudget(10000))
	_, err := e.Run(`while (true) {}`)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v, want step budget exceeded", err)
	}
}

func TestCompoundAssignAndUpdate(t *testing.T) {
	if got := num(t, `var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x;`); got != 6 {
		t.Fatalf("compound = %v", got)
	}
	if got := num(t, `var i = 5; var a = i++; var b = ++i; a * 100 + b * 10 + i;`); got != 577 {
		t.Fatalf("update = %v", got)
	}
	if got := num(t, `var a = [1]; a[0] <<= 4; a[0];`); got != 16 {
		t.Fatalf("indexed compound = %v", got)
	}
}

func TestVarScopingAndImplicitGlobal(t *testing.T) {
	if got := num(t, `
function f() { implicitG = 7; var local = 1; return local; }
f();
implicitG;
`); got != 7 {
		t.Fatalf("implicit global = %v", got)
	}
}

func TestFunctionHoisting(t *testing.T) {
	if got := num(t, `var r = early(); function early() { return 11; } r;`); got != 11 {
		t.Fatalf("hoisting = %v", got)
	}
}
