package jsvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cycada/internal/sim/kernel"
	"cycada/internal/sim/mem"
	"cycada/internal/sim/vclock"
)

// Engine is a JavaScript engine instance bound to a simulated thread.
type Engine struct {
	t   *kernel.Thread
	jit bool

	jitRegion *mem.Mapping
	global    *scope
	output    []string

	opsRun     int64
	regexSteps int64
	maxSteps   int64
}

// Option configures an engine.
type Option func(*Engine)

// WithoutJIT forces the interpreter even when executable memory is
// available (the "iOS with JavaScript JIT disabled" series of Figure 5).
func WithoutJIT() Option {
	return func(e *Engine) { e.jit = false }
}

// WithStepBudget bounds execution (safety for conformance tests).
func WithStepBudget(n int64) Option {
	return func(e *Engine) { e.maxSteps = n }
}

// New creates an engine for the given thread. Like JavaScriptCore it
// requests writable executable memory for its JIT; if the kernel denies the
// mapping — the Cycada Mach VM bug (§9) — it silently falls back to the
// interpreter.
func New(t *kernel.Thread, opts ...Option) *Engine {
	e := &Engine{t: t}
	if m, err := t.Mmap(256<<10, mem.ProtRead|mem.ProtWrite|mem.ProtExec, "jsc-jit"); err == nil {
		e.jit = true
		e.jitRegion = m
	}
	for _, o := range opts {
		o(e)
	}
	e.global = newScope(nil)
	e.installGlobals()
	return e
}

// JITEnabled reports whether the baseline JIT is active.
func (e *Engine) JITEnabled() bool { return e.jit }

// OpsRun reports the number of VM operations executed (tests, calibration).
func (e *Engine) OpsRun() int64 { return e.opsRun }

// RegexSteps reports backtracking steps taken (tests, calibration).
func (e *Engine) RegexSteps() int64 { return e.regexSteps }

// Output returns the lines print() produced.
func (e *Engine) Output() []string { return append([]string(nil), e.output...) }

// Run parses and executes a script in the engine's persistent global scope,
// returning the value of the last statement. In JIT mode parsing also pays
// the baseline compilation cost per AST node.
func (e *Engine) Run(src string) (Value, error) {
	prog, nodes, err := parse(src)
	if err != nil {
		return nil, err
	}
	if e.jit {
		e.t.ChargeCPU(vclock.Duration(nodes) * e.t.Costs().JSCompilePerOp)
	}
	ip := &interp{e: e, global: e.global, maxSteps: e.maxSteps}
	v, _, err := ip.execBlock(prog, e.global)
	ip.flushOps()
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Call invokes a global function by name (the DOM event plumbing uses it).
func (e *Engine) Call(name string, args ...Value) (Value, error) {
	fn, ok := e.global.lookup(name)
	if !ok {
		return nil, &RuntimeError{Msg: name + " is not defined"}
	}
	ip := &interp{e: e, global: e.global, maxSteps: e.maxSteps}
	v, err := ip.callValue(fn, Undefined{}, args, 0)
	ip.flushOps()
	return v, err
}

// SetGlobal installs a host value (e.g. the DOM document object).
func (e *Engine) SetGlobal(name string, v Value) { e.global.vars[name] = v }

// Global reads a global.
func (e *Engine) Global(name string) (Value, bool) { return e.global.lookup(name) }

// GoFunc wraps a Go function as a JS builtin.
func GoFunc(name string, fn func(args []Value) (Value, error)) *Builtin {
	return &Builtin{Name: name, Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		return fn(args)
	}}
}

func (e *Engine) installGlobals() {
	g := e.global.vars

	g["print"] = &Builtin{Name: "print", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToString(a)
		}
		e.output = append(e.output, strings.Join(parts, " "))
		return Undefined{}, nil
	}}

	g["parseInt"] = &Builtin{Name: "parseInt", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		radix := 10
		if len(args) > 1 {
			if r := int(toNumber(args[1])); r >= 2 && r <= 36 {
				radix = r
			}
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else {
			s = strings.TrimPrefix(s, "+")
		}
		if radix == 16 || strings.HasPrefix(strings.ToLower(s), "0x") {
			s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
			radix = 16
		}
		end := 0
		for end < len(s) {
			d := digitVal(s[end])
			if d < 0 || d >= radix {
				break
			}
			end++
		}
		if end == 0 {
			return math.NaN(), nil
		}
		n, err := strconv.ParseInt(s[:end], radix, 64)
		if err != nil {
			return math.NaN(), nil
		}
		if neg {
			n = -n
		}
		return float64(n), nil
	}}

	g["parseFloat"] = &Builtin{Name: "parseFloat", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		end := len(s)
		for end > 0 {
			if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
				break
			}
			end--
		}
		if end == 0 {
			return math.NaN(), nil
		}
		f, _ := strconv.ParseFloat(s[:end], 64)
		return f, nil
	}}

	g["isNaN"] = &Builtin{Name: "isNaN", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return true, nil
		}
		return math.IsNaN(toNumber(args[0])), nil
	}}

	g["NaN"] = math.NaN()
	g["Infinity"] = math.Inf(1)

	// Math.
	mathObj := NewObject()
	mathObj.Set("PI", math.Pi)
	mathObj.Set("E", math.E)
	m1 := func(name string, f func(float64) float64) {
		mathObj.Set(name, &Builtin{Name: "Math." + name, Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return math.NaN(), nil
			}
			return f(toNumber(args[0])), nil
		}})
	}
	m1("abs", math.Abs)
	m1("floor", math.Floor)
	m1("ceil", math.Ceil)
	m1("sqrt", math.Sqrt)
	m1("sin", math.Sin)
	m1("cos", math.Cos)
	m1("tan", math.Tan)
	m1("atan", math.Atan)
	m1("asin", math.Asin)
	m1("acos", math.Acos)
	m1("exp", math.Exp)
	m1("log", math.Log)
	m1("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	mathObj.Set("pow", &Builtin{Name: "Math.pow", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return math.NaN(), nil
		}
		return math.Pow(toNumber(args[0]), toNumber(args[1])), nil
	}})
	mathObj.Set("atan2", &Builtin{Name: "Math.atan2", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return math.NaN(), nil
		}
		return math.Atan2(toNumber(args[0]), toNumber(args[1])), nil
	}})
	mathObj.Set("max", &Builtin{Name: "Math.max", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, toNumber(a))
		}
		return out, nil
	}})
	mathObj.Set("min", &Builtin{Name: "Math.min", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, toNumber(a))
		}
		return out, nil
	}})
	// Deterministic "random": an LCG so benchmark runs are reproducible.
	seed := uint64(88172645463325252)
	mathObj.Set("random", &Builtin{Name: "Math.random", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53), nil
	}})
	g["Math"] = mathObj

	// String namespace.
	strObj := NewObject()
	strObj.Set("fromCharCode", &Builtin{Name: "String.fromCharCode", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteByte(byte(uint32(toNumber(a)) & 0xff))
		}
		return b.String(), nil
	}})
	g["String"] = strObj

	// Array constructor.
	g["Array"] = &Builtin{Name: "Array", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) == 1 {
			if n, ok := args[0].(float64); ok {
				elems := make([]Value, int(n))
				for i := range elems {
					elems[i] = Undefined{}
				}
				return &Array{Elems: elems}, nil
			}
		}
		return &Array{Elems: append([]Value(nil), args...)}, nil
	}}

	// Date: virtual-clock backed, so scripts that self-time are
	// deterministic.
	now := func() float64 {
		return float64(e.t.VTime().AsTime().Milliseconds())
	}
	dateCtor := &Builtin{Name: "Date", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		obj := NewObject()
		t0 := now()
		obj.Set("getTime", &Builtin{Name: "getTime", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			return t0, nil
		}})
		obj.Set("valueOf", &Builtin{Name: "valueOf", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			return t0, nil
		}})
		return obj, nil
	}}
	g["Date"] = dateCtor

	// RegExp constructor.
	g["RegExp"] = &Builtin{Name: "RegExp", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return nil, &RuntimeError{Msg: "RegExp needs a pattern"}
		}
		flags := ""
		if len(args) > 1 {
			flags = ToString(args[1])
		}
		return e.compileRegex(ToString(args[0]), flags)
	}}

	// Object keys helper (subset of the real Object namespace).
	objObj := NewObject()
	objObj.Set("keys", &Builtin{Name: "Object.keys", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
		out := &Array{}
		if len(args) == 1 {
			if o, ok := args[0].(*Object); ok {
				for _, k := range o.Keys() {
					out.Elems = append(out.Elems, k)
				}
			}
		}
		return out, nil
	}})
	g["Object"] = objObj
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// Errorf builds a runtime error (host integrations).
func Errorf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}
