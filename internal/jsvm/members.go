package jsvm

import (
	"math"
	"strconv"
	"strings"
)

// getMember resolves obj.name, including the method surfaces of strings,
// arrays and numbers that the workloads use.
func (ip *interp) getMember(obj Value, name string, line int) (Value, error) {
	switch o := obj.(type) {
	case *Object:
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		return Undefined{}, nil
	case *Array:
		if name == "length" {
			return float64(len(o.Elems)), nil
		}
		if m := arrayMethod(o, name); m != nil {
			return m, nil
		}
		return Undefined{}, nil
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		if m := stringMethod(o, name); m != nil {
			return m, nil
		}
		return Undefined{}, nil
	case float64:
		if m := numberMethod(o, name); m != nil {
			return m, nil
		}
		return Undefined{}, nil
	case *Regexp:
		switch name {
		case "source":
			return o.Source, nil
		case "global":
			return o.Global(), nil
		case "test":
			return &Builtin{Name: "test", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
				s := ""
				if len(args) > 0 {
					s = ToString(args[0])
				}
				m, _, err := ip.e.regexSearch(o, s, 0)
				return m >= 0, err
			}}, nil
		case "exec":
			return &Builtin{Name: "exec", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
				s := ""
				if len(args) > 0 {
					s = ToString(args[0])
				}
				start, end, err := ip.e.regexSearch(o, s, 0)
				if err != nil || start < 0 {
					return Null{}, err
				}
				return &Array{Elems: []Value{s[start:end]}}, nil
			}}, nil
		}
		return Undefined{}, nil
	case Undefined, Null, nil:
		return nil, &RuntimeError{Line: line, Msg: "cannot read property " + name + " of " + ToString(obj)}
	default:
		return Undefined{}, nil
	}
}

func (ip *interp) setMember(obj Value, name string, v Value, line int) error {
	switch o := obj.(type) {
	case *Object:
		o.Set(name, v)
		return nil
	case *Array:
		if name == "length" {
			n := int(toNumber(v))
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems = o.Elems[:n]
			return nil
		}
		return nil
	case Undefined, Null, nil:
		return &RuntimeError{Line: line, Msg: "cannot set property " + name + " of " + ToString(obj)}
	default:
		return nil // writes to primitives silently vanish, like sloppy JS
	}
}

func (ip *interp) getIndex(obj, idx Value, line int) (Value, error) {
	switch o := obj.(type) {
	case *Array:
		i := int(toNumber(idx))
		if i < 0 || i >= len(o.Elems) {
			return Undefined{}, nil
		}
		return o.Elems[i], nil
	case string:
		if f, ok := idx.(float64); ok {
			i := int(f)
			if i < 0 || i >= len(o) {
				return Undefined{}, nil
			}
			return string(o[i]), nil
		}
		return ip.getMember(obj, ToString(idx), line)
	case *Object:
		return ip.getMember(obj, ToString(idx), line)
	case Undefined, Null, nil:
		return nil, &RuntimeError{Line: line, Msg: "cannot index " + ToString(obj)}
	default:
		return Undefined{}, nil
	}
}

func (ip *interp) setIndex(obj, idx, v Value, line int) error {
	switch o := obj.(type) {
	case *Array:
		i := int(toNumber(idx))
		if i < 0 {
			return &RuntimeError{Line: line, Msg: "negative array index"}
		}
		for len(o.Elems) <= i {
			o.Elems = append(o.Elems, Undefined{})
		}
		o.Elems[i] = v
		return nil
	case *Object:
		o.Set(ToString(idx), v)
		return nil
	default:
		return ip.setMember(obj, ToString(idx), v, line)
	}
}

func arrayMethod(a *Array, name string) *Builtin {
	switch name {
	case "push":
		return &Builtin{Name: "push", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			a.Elems = append(a.Elems, args...)
			return float64(len(a.Elems)), nil
		}}
	case "pop":
		return &Builtin{Name: "pop", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[len(a.Elems)-1]
			a.Elems = a.Elems[:len(a.Elems)-1]
			return v, nil
		}}
	case "shift":
		return &Builtin{Name: "shift", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[0]
			a.Elems = a.Elems[1:]
			return v, nil
		}}
	case "join":
		return &Builtin{Name: "join", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, len(a.Elems))
			for i, e := range a.Elems {
				if isNullish(e) {
					parts[i] = ""
				} else {
					parts[i] = ToString(e)
				}
			}
			return strings.Join(parts, sep), nil
		}}
	case "concat":
		return &Builtin{Name: "concat", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			out := append([]Value(nil), a.Elems...)
			for _, arg := range args {
				if arr, ok := arg.(*Array); ok {
					out = append(out, arr.Elems...)
				} else {
					out = append(out, arg)
				}
			}
			return &Array{Elems: out}, nil
		}}
	case "slice":
		return &Builtin{Name: "slice", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			start, end := sliceRange(len(a.Elems), args)
			return &Array{Elems: append([]Value(nil), a.Elems[start:end]...)}, nil
		}}
	case "indexOf":
		return &Builtin{Name: "indexOf", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			for i, e := range a.Elems {
				if strictEquals(e, args[0]) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		}}
	case "reverse":
		return &Builtin{Name: "reverse", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
				a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
			}
			return a, nil
		}}
	case "sort":
		return &Builtin{Name: "sort", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			var cmp Value
			if len(args) > 0 {
				cmp = args[0]
			}
			if err := sortValues(ip, a.Elems, cmp); err != nil {
				return nil, err
			}
			return a, nil
		}}
	default:
		return nil
	}
}

func sliceRange(n int, args []Value) (int, int) {
	start, end := 0, n
	if len(args) > 0 {
		start = relIndex(n, toNumber(args[0]))
	}
	if len(args) > 1 {
		if _, u := args[1].(Undefined); !u {
			end = relIndex(n, toNumber(args[1]))
		}
	}
	if end < start {
		end = start
	}
	return start, end
}

func relIndex(n int, f float64) int {
	i := int(f)
	if i < 0 {
		i += n
	}
	if i < 0 {
		i = 0
	}
	if i > n {
		i = n
	}
	return i
}

func stringMethod(s string, name string) *Builtin {
	switch name {
	case "charAt":
		return &Builtin{Name: "charAt", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(toNumber(args[0]))
			}
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return string(s[i]), nil
		}}
	case "charCodeAt":
		return &Builtin{Name: "charCodeAt", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(toNumber(args[0]))
			}
			if i < 0 || i >= len(s) {
				return math.NaN(), nil
			}
			return float64(s[i]), nil
		}}
	case "indexOf":
		return &Builtin{Name: "indexOf", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			return float64(strings.Index(s, ToString(args[0]))), nil
		}}
	case "lastIndexOf":
		return &Builtin{Name: "lastIndexOf", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			return float64(strings.LastIndex(s, ToString(args[0]))), nil
		}}
	case "substring", "slice":
		return &Builtin{Name: name, Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if name == "substring" && len(args) > 1 {
				// substring swaps its arguments when start > end (and clamps
				// negatives to zero) before slicing.
				a, b := toNumber(args[0]), toNumber(args[1])
				if a > b {
					args = []Value{b, a}
				}
				if toNumber(args[0]) < 0 {
					args[0] = float64(0)
				}
				if toNumber(args[1]) < 0 {
					args[1] = float64(0)
				}
			}
			start, end := sliceRange(len(s), args)
			return s[start:end], nil
		}}
	case "split":
		return &Builtin{Name: "split", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return &Array{Elems: []Value{s}}, nil
			}
			if re, ok := args[0].(*Regexp); ok {
				parts, err := ip.e.regexSplit(re, s)
				if err != nil {
					return nil, err
				}
				out := make([]Value, len(parts))
				for i, p := range parts {
					out[i] = p
				}
				return &Array{Elems: out}, nil
			}
			sep := ToString(args[0])
			var parts []string
			if sep == "" {
				for _, c := range []byte(s) {
					parts = append(parts, string(c))
				}
			} else {
				parts = strings.Split(s, sep)
			}
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = p
			}
			return &Array{Elems: out}, nil
		}}
	case "toUpperCase":
		return &Builtin{Name: "toUpperCase", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			return strings.ToUpper(s), nil
		}}
	case "toLowerCase":
		return &Builtin{Name: "toLowerCase", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			return strings.ToLower(s), nil
		}}
	case "concat":
		return &Builtin{Name: "concat", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			out := s
			for _, a := range args {
				out += ToString(a)
			}
			return out, nil
		}}
	case "replace":
		return &Builtin{Name: "replace", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return s, nil
			}
			repl := ToString(args[1])
			if re, ok := args[0].(*Regexp); ok {
				return ip.e.regexReplace(re, s, repl)
			}
			pat := ToString(args[0])
			return strings.Replace(s, pat, repl, 1), nil
		}}
	case "match":
		return &Builtin{Name: "match", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Null{}, nil
			}
			re, ok := args[0].(*Regexp)
			if !ok {
				var err error
				re, err = ip.e.compileRegex(ToString(args[0]), "")
				if err != nil {
					return nil, err
				}
			}
			matches, err := ip.e.regexMatchAll(re, s)
			if err != nil {
				return nil, err
			}
			if len(matches) == 0 {
				return Null{}, nil
			}
			out := make([]Value, len(matches))
			for i, m := range matches {
				out[i] = m
			}
			return &Array{Elems: out}, nil
		}}
	case "search":
		return &Builtin{Name: "search", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			re, ok := args[0].(*Regexp)
			if !ok {
				var err error
				re, err = ip.e.compileRegex(ToString(args[0]), "")
				if err != nil {
					return nil, err
				}
			}
			start, _, err := ip.e.regexSearch(re, s, 0)
			return float64(start), err
		}}
	default:
		return nil
	}
}

func numberMethod(f float64, name string) *Builtin {
	switch name {
	case "toString":
		return &Builtin{Name: "toString", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			if len(args) > 0 {
				radix := int(toNumber(args[0]))
				if radix >= 2 && radix <= 36 && f == math.Trunc(f) {
					return strconv.FormatInt(int64(f), radix), nil
				}
			}
			return formatNumber(f), nil
		}}
	case "toFixed":
		return &Builtin{Name: "toFixed", Fn: func(ip *interp, this Value, args []Value) (Value, error) {
			digits := 0
			if len(args) > 0 {
				digits = int(toNumber(args[0]))
			}
			return strconv.FormatFloat(f, 'f', digits, 64), nil
		}}
	default:
		return nil
	}
}
