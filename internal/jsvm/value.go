package jsvm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a JavaScript value: float64, string, bool, Undefined, Null,
// *Object, *Array, *Function, *Builtin or *Regexp.
type Value any

// Undefined is the JS undefined value.
type Undefined struct{}

// Null is the JS null value.
type Null struct{}

// Object is a JS object with insertion-ordered keys.
type Object struct {
	props map[string]Value
	keys  []string
}

// NewObject creates an empty object.
func NewObject() *Object {
	return &Object{props: map[string]Value{}}
}

// Get reads a property.
func (o *Object) Get(k string) (Value, bool) {
	v, ok := o.props[k]
	return v, ok
}

// Set writes a property.
func (o *Object) Set(k string, v Value) {
	if _, ok := o.props[k]; !ok {
		o.keys = append(o.keys, k)
	}
	o.props[k] = v
}

// Delete removes a property.
func (o *Object) Delete(k string) {
	if _, ok := o.props[k]; !ok {
		return
	}
	delete(o.props, k)
	for i, key := range o.keys {
		if key == k {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

// Keys returns the insertion-ordered property names.
func (o *Object) Keys() []string { return o.keys }

// Array is a JS array.
type Array struct {
	Elems []Value
}

// Function is a JS closure.
type Function struct {
	lit *funcLit
	env *scope
}

// Builtin is a native function.
type Builtin struct {
	Name string
	Fn   func(ip *interp, this Value, args []Value) (Value, error)
}

// Regexp is a compiled regular expression literal.
type Regexp struct {
	Source string
	Flags  string
	prog   *reProg
}

// Global reports whether the regex has the g flag.
func (r *Regexp) Global() bool { return strings.Contains(r.Flags, "g") }

// --- Conversions (ECMAScript-ish) ---

func truthy(v Value) bool {
	switch x := v.(type) {
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case Undefined, Null, nil:
		return false
	default:
		return true
	}
}

func toNumber(v Value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			if n, err := strconv.ParseUint(s[2:], 16, 64); err == nil {
				return float64(n)
			}
			return math.NaN()
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case Null:
		return 0
	case *Array:
		if len(x.Elems) == 1 {
			return toNumber(x.Elems[0])
		}
		if len(x.Elems) == 0 {
			return 0
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}

func toInt32(v Value) int32 {
	f := toNumber(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(f)))
}

func toUint32(v Value) uint32 {
	f := toNumber(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(f))
}

func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ToString renders a value as JS string conversion would.
func ToString(v Value) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return formatNumber(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case Undefined, nil:
		return "undefined"
	case Null:
		return "null"
	case *Array:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			if isNullish(e) {
				parts[i] = ""
			} else {
				parts[i] = ToString(e)
			}
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object Object]"
	case *Function:
		name := x.lit.name
		if name == "" {
			name = "anonymous"
		}
		return "function " + name + "() { [code] }"
	case *Builtin:
		return "function " + x.Name + "() { [native code] }"
	case *Regexp:
		return "/" + x.Source + "/" + x.Flags
	default:
		return fmt.Sprintf("%v", v)
	}
}

func isNullish(v Value) bool {
	switch v.(type) {
	case Undefined, Null, nil:
		return true
	}
	return false
}

func typeOf(v Value) string {
	switch v.(type) {
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	case Undefined, nil:
		return "undefined"
	case *Function, *Builtin:
		return "function"
	default:
		return "object"
	}
}

// looseEquals implements the == operator for the types the subset supports.
func looseEquals(a, b Value) bool {
	if isNullish(a) && isNullish(b) {
		return true
	}
	if isNullish(a) != isNullish(b) {
		return false
	}
	switch x := a.(type) {
	case float64:
		return x == toNumber(b)
	case string:
		if y, ok := b.(string); ok {
			return x == y
		}
		return toNumber(x) == toNumber(b)
	case bool:
		return toNumber(x) == toNumber(b)
	default:
		switch b.(type) {
		case float64, string, bool:
			return looseEquals(b, a)
		}
		return a == b
	}
}

// strictEquals implements ===.
func strictEquals(a, b Value) bool {
	if typeOf(a) != typeOf(b) {
		return false
	}
	switch x := a.(type) {
	case float64:
		return x == b.(float64)
	case string:
		return x == b.(string)
	case bool:
		return x == b.(bool)
	case Undefined, nil:
		return true
	case Null:
		return true
	default:
		return a == b
	}
}

// sortValues sorts like Array.prototype.sort (string comparison by default,
// comparator otherwise).
func sortValues(ip *interp, elems []Value, cmp Value) error {
	var sortErr error
	if cmp == nil {
		sort.SliceStable(elems, func(i, j int) bool {
			return ToString(elems[i]) < ToString(elems[j])
		})
		return nil
	}
	sort.SliceStable(elems, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		r, err := ip.callValue(cmp, Undefined{}, []Value{elems[i], elems[j]}, 0)
		if err != nil {
			sortErr = err
			return false
		}
		return toNumber(r) < 0
	})
	return sortErr
}
