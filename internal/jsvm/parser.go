package jsvm

import "fmt"

type parser struct {
	toks  []token
	pos   int
	nodes int // parsed node count (drives compile cost in JIT mode)
}

func parse(src string) ([]stmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	var prog []stmt
	for p.cur().kind != tokEOF {
		s, err := p.statement()
		if err != nil {
			return nil, 0, err
		}
		prog = append(prog, s)
	}
	return prog, p.nodes, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(kind tokKind, text string) bool {
	return p.cur().kind == kind && p.cur().text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.is(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if !p.is(kind, text) {
		return p.cur(), &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected %q, found %q", text, p.cur().text)}
	}
	return p.next(), nil
}

// semi consumes an optional statement-terminating semicolon.
func (p *parser) semi() {
	p.accept(tokPunct, ";")
}

func (p *parser) statement() (stmt, error) {
	p.nodes++
	t := p.cur()
	switch {
	case t.kind == tokPunct && t.text == "{":
		return p.block()
	case t.kind == tokPunct && t.text == ";":
		p.pos++
		return blockStmt{}, nil
	case t.kind == tokKeyword:
		switch t.text {
		case "var":
			s, err := p.varStatement()
			if err != nil {
				return nil, err
			}
			p.semi()
			return s, nil
		case "function":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn, err := p.funcRest(name)
			if err != nil {
				return nil, err
			}
			return funcDeclStmt{name: name, fn: fn}, nil
		case "return":
			p.pos++
			if p.is(tokPunct, ";") || p.is(tokPunct, "}") {
				p.semi()
				return returnStmt{}, nil
			}
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.semi()
			return returnStmt{x: x}, nil
		case "if":
			return p.ifStatement()
		case "while":
			p.pos++
			cond, err := p.parenExpr()
			if err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return whileStmt{cond: cond, body: body}, nil
		case "do":
			p.pos++
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "while"); err != nil {
				return nil, err
			}
			cond, err := p.parenExpr()
			if err != nil {
				return nil, err
			}
			p.semi()
			return whileStmt{cond: cond, body: body, post: true}, nil
		case "for":
			return p.forStatement()
		case "break":
			p.pos++
			p.semi()
			return breakStmt{}, nil
		case "continue":
			p.pos++
			p.semi()
			return continueStmt{}, nil
		case "switch":
			return p.switchStatement()
		}
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.semi()
	return exprStmt{x: x}, nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", &SyntaxError{Line: p.cur().line, Msg: "expected identifier, found " + p.cur().text}
	}
	return p.next().text, nil
}

func (p *parser) block() (stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var list []stmt
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "unterminated block"}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
	return blockStmt{list: list}, nil
}

func (p *parser) varStatement() (stmt, error) {
	if _, err := p.expect(tokKeyword, "var"); err != nil {
		return nil, err
	}
	var decls []varDecl
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := varDecl{name: name}
		if p.accept(tokPunct, "=") {
			init, err := p.assignment()
			if err != nil {
				return nil, err
			}
			d.init = init
		}
		decls = append(decls, d)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return varStmt{decls: decls}, nil
}

func (p *parser) parenExpr() (expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return x, nil
}

func (p *parser) ifStatement() (stmt, error) {
	p.pos++ // if
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els stmt
	if p.accept(tokKeyword, "else") {
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return ifStmt{cond: cond, then: then, els: els}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.pos++ // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	// for (var x in obj) / for (x in obj)
	save := p.pos
	if p.is(tokKeyword, "var") || p.cur().kind == tokIdent {
		hasVar := p.accept(tokKeyword, "var")
		if p.cur().kind == tokIdent {
			name := p.next().text
			if p.accept(tokKeyword, "in") {
				obj, err := p.expression()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				body, err := p.statement()
				if err != nil {
					return nil, err
				}
				return forInStmt{varName: name, obj: obj, body: body}, nil
			}
		}
		_ = hasVar
		p.pos = save
	}

	var init stmt
	if !p.is(tokPunct, ";") {
		if p.is(tokKeyword, "var") {
			s, err := p.varStatement()
			if err != nil {
				return nil, err
			}
			init = s
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			init = exprStmt{x: x}
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	var cond expr
	if !p.is(tokPunct, ";") {
		c, err := p.expression()
		if err != nil {
			return nil, err
		}
		cond = c
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	var post expr
	if !p.is(tokPunct, ")") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		post = x
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return forStmt{init: init, cond: cond, post: post, body: body}, nil
}

func (p *parser) switchStatement() (stmt, error) {
	p.pos++ // switch
	tag, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	out := switchStmt{tag: tag, defIdx: -1}
	for !p.accept(tokPunct, "}") {
		var c switchCase
		if p.accept(tokKeyword, "case") {
			m, err := p.expression()
			if err != nil {
				return nil, err
			}
			c.match = m
		} else if p.accept(tokKeyword, "default") {
			out.defIdx = len(out.cases)
		} else {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected case or default"}
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		for !p.is(tokKeyword, "case") && !p.is(tokKeyword, "default") && !p.is(tokPunct, "}") {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			c.body = append(c.body, s)
		}
		out.cases = append(out.cases, c)
	}
	return out, nil
}

func (p *parser) funcRest(name string) (*funcLit, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.accept(tokPunct, ")") {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, n)
		if !p.accept(tokPunct, ",") && !p.is(tokPunct, ")") {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ) in parameter list"}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{name: name, params: params, body: body.(blockStmt).list}, nil
}

// --- Expressions (precedence climbing) ---

func (p *parser) expression() (expr, error) { return p.assignment() }

func (p *parser) assignment() (expr, error) {
	p.nodes++
	l, err := p.conditional()
	if err != nil {
		return nil, err
	}
	op := p.cur().text
	if p.cur().kind == tokPunct {
		switch op {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>=":
			line := p.next().line
			switch l.(type) {
			case identExpr, memberExpr, indexExpr:
			default:
				return nil, &SyntaxError{Line: line, Msg: "invalid assignment target"}
			}
			r, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return assignExpr{op: op, target: l, value: r, line: line}, nil
		}
	}
	return l, nil
}

func (p *parser) conditional() (expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "?") {
		then, err := p.assignment()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		els, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return condExpr{cond: c, then: then, els: els}, nil
	}
	return c, nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int) (expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		op := t.text
		if t.kind != tokPunct && !(t.kind == tokKeyword && op == "in") {
			return l, nil
		}
		prec, ok := binPrec[op]
		if !ok || prec <= minPrec {
			return l, nil
		}
		p.pos++
		r, err := p.binary(prec)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" {
			l = logicalExpr{op: op, l: l, r: r}
		} else {
			l = binExpr{op: op, l: l, r: r, line: t.line}
		}
	}
}

func (p *parser) unary() (expr, error) {
	p.nodes++
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "+":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return unaryExpr{op: t.text, x: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return updateExpr{op: t.text, prefix: true, target: x}, nil
		}
	}
	if t.kind == tokKeyword && (t.text == "typeof" || t.text == "delete") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: t.text, x: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.callMember()
	if err != nil {
		return nil, err
	}
	if p.is(tokPunct, "++") || p.is(tokPunct, "--") {
		op := p.next().text
		return updateExpr{op: op, prefix: false, target: x}, nil
	}
	return x, nil
}

func (p *parser) callMember() (expr, error) {
	var x expr
	var err error
	if p.is(tokKeyword, "new") {
		line := p.next().line
		callee, err := p.callMemberNoCall()
		if err != nil {
			return nil, err
		}
		var args []expr
		if p.accept(tokPunct, "(") {
			args, err = p.argList()
			if err != nil {
				return nil, err
			}
		}
		x = newExpr{callee: callee, args: args, line: line}
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.accept(tokPunct, "."):
			if p.cur().kind != tokIdent && p.cur().kind != tokKeyword {
				return nil, &SyntaxError{Line: p.cur().line, Msg: "expected property name"}
			}
			n := p.next()
			x = memberExpr{obj: x, name: n.text, line: n.line}
		case p.is(tokPunct, "["):
			line := p.next().line
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = indexExpr{obj: x, idx: idx, line: line}
		case p.is(tokPunct, "("):
			line := p.next().line
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			x = callExpr{callee: x, args: args, line: line}
		default:
			return x, nil
		}
	}
}

// callMemberNoCall parses member chains without call suffixes (new targets).
func (p *parser) callMemberNoCall() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, ".") {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		x = memberExpr{obj: x, name: n}
	}
	return x, nil
}

func (p *parser) argList() ([]expr, error) {
	var args []expr
	for !p.accept(tokPunct, ")") {
		a, err := p.assignment()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(tokPunct, ",") && !p.is(tokPunct, ")") {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ) in arguments"}
		}
	}
	return args, nil
}

func (p *parser) primary() (expr, error) {
	p.nodes++
	t := p.cur()
	switch t.kind {
	case tokNum:
		p.pos++
		return numLit{v: t.num}, nil
	case tokStr:
		p.pos++
		return strLit{v: t.text}, nil
	case tokRegex:
		p.pos++
		return regexLit{pattern: t.text, flags: t.flags}, nil
	case tokIdent:
		p.pos++
		return identExpr{name: t.text, line: t.line}, nil
	case tokKeyword:
		switch t.text {
		case "true", "false":
			p.pos++
			return boolLit{v: t.text == "true"}, nil
		case "null":
			p.pos++
			return nullLit{}, nil
		case "undefined":
			p.pos++
			return undefinedLit{}, nil
		case "this":
			p.pos++
			return thisExpr{}, nil
		case "function":
			p.pos++
			name := ""
			if p.cur().kind == tokIdent {
				name = p.next().text
			}
			fn, err := p.funcRest(name)
			if err != nil {
				return nil, err
			}
			return *fn, nil
		}
	case tokPunct:
		switch t.text {
		case "(":
			p.pos++
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.pos++
			var elems []expr
			for !p.accept(tokPunct, "]") {
				e, err := p.assignment()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.accept(tokPunct, ",") && !p.is(tokPunct, "]") {
					return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or ] in array literal"}
				}
			}
			return arrayLit{elems: elems}, nil
		case "{":
			p.pos++
			var lit objectLit
			for !p.accept(tokPunct, "}") {
				var key string
				switch p.cur().kind {
				case tokIdent, tokKeyword, tokStr:
					key = p.next().text
				case tokNum:
					key = formatNumber(p.next().num)
				default:
					return nil, &SyntaxError{Line: p.cur().line, Msg: "expected property key"}
				}
				if _, err := p.expect(tokPunct, ":"); err != nil {
					return nil, err
				}
				v, err := p.assignment()
				if err != nil {
					return nil, err
				}
				lit.keys = append(lit.keys, key)
				lit.vals = append(lit.vals, v)
				if !p.accept(tokPunct, ",") && !p.is(tokPunct, "}") {
					return nil, &SyntaxError{Line: p.cur().line, Msg: "expected , or } in object literal"}
				}
			}
			return lit, nil
		}
	}
	return nil, &SyntaxError{Line: t.line, Msg: "unexpected token " + t.text}
}
