package webkit

import (
	"strings"
	"testing"

	"cycada/internal/graphics2d"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/sim/vclock"
)

func TestParseHTMLBasics(t *testing.T) {
	doc, err := ParseHTML(`
<!DOCTYPE html>
<html>
<head><title> My Page </title></head>
<body>
  <h1 id="hdr">Hello</h1>
  <p class="intro">some <b>bold</b> text</p>
  <img src="pic" width="10" height="8">
  <!-- a comment -->
</body>
</html>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "My Page" {
		t.Fatalf("title = %q", doc.Title)
	}
	hdr := doc.GetElementByID("hdr")
	if hdr == nil || hdr.Tag != "h1" || hdr.TextContent() != "Hello" {
		t.Fatalf("hdr = %+v", hdr)
	}
	ps := doc.GetElementsByTagName("p")
	if len(ps) != 1 || ps[0].Attr("class") != "intro" {
		t.Fatalf("ps = %v", ps)
	}
	if got := ps[0].TextContent(); got != "some bold text" {
		t.Fatalf("text = %q", got)
	}
	if doc.Body() == nil {
		t.Fatal("no body")
	}
	if doc.GetElementByID("nope") != nil {
		t.Fatal("ghost element")
	}
}

func TestParseHTMLAttributesQuoting(t *testing.T) {
	doc, err := ParseHTML(`<div id='single' data-a=bare checked style="color:#f00">x</div>`)
	if err != nil {
		t.Fatal(err)
	}
	d := doc.GetElementByID("single")
	if d == nil {
		t.Fatal("element missing")
	}
	if d.Attr("data-a") != "bare" {
		t.Fatalf("bare attr = %q", d.Attr("data-a"))
	}
	if _, ok := d.Attrs["checked"]; !ok {
		t.Fatal("boolean attr missing")
	}
}

func TestParseHTMLScriptRawText(t *testing.T) {
	doc, err := ParseHTML(`<body><script>if (1 < 2) { x = "<p>"; }</script><p>after</p></body>`)
	if err != nil {
		t.Fatal(err)
	}
	scripts := doc.Scripts()
	if len(scripts) != 1 || !strings.Contains(scripts[0], `x = "<p>"`) {
		t.Fatalf("scripts = %q", scripts)
	}
	if len(doc.GetElementsByTagName("p")) != 1 {
		t.Fatal("content after script lost")
	}
}

func TestParseHTMLErrors(t *testing.T) {
	for _, src := range []string{
		`<div`,
		`<script>never closed`,
		`<div id="unterminated>x</div>`,
	} {
		if _, err := ParseHTML(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
	// Mismatched close tags are tolerated.
	if _, err := ParseHTML(`<div><p>x</div></p>`); err != nil {
		t.Errorf("mismatched close rejected: %v", err)
	}
}

func TestNodeMutation(t *testing.T) {
	parent := NewElement("div")
	a := NewElement("p")
	parent.Append(a)
	if a.Parent != parent {
		t.Fatal("parent not set")
	}
	if !parent.RemoveChild(a) {
		t.Fatal("remove failed")
	}
	if parent.RemoveChild(a) {
		t.Fatal("double remove succeeded")
	}
	parent.SetTextContent("plain")
	if parent.TextContent() != "plain" || len(parent.Children) != 1 {
		t.Fatal("SetTextContent wrong")
	}
}

func TestComputeStyle(t *testing.T) {
	h1 := NewElement("h1")
	st := ComputeStyle(h1, nil)
	if st.Display != DisplayBlock || !st.Bold || st.FontSize <= 14 {
		t.Fatalf("h1 style = %+v", st)
	}
	script := NewElement("script")
	if ComputeStyle(script, nil).Display != DisplayNone {
		t.Fatal("script visible")
	}
	span := NewElement("span")
	parent := Style{Color: gpu.RGBA{R: 9, A: 255}, FontSize: 20}
	if got := ComputeStyle(span, &parent); got.Color.R != 9 || got.FontSize != 20 {
		t.Fatalf("inheritance broken: %+v", got)
	}
	styled := NewElement("div")
	styled.SetAttr("style", "color: #ff0000; background: blue; font-size: 18px; display: inline; padding: 3")
	got := ComputeStyle(styled, nil)
	if got.Color.R != 255 || got.Background.B != 255 || got.FontSize != 18 ||
		got.Display != DisplayInline || got.Padding != 3 {
		t.Fatalf("inline style = %+v", got)
	}
}

func TestParseColor(t *testing.T) {
	cases := map[string]gpu.RGBA{
		"#fff":    {R: 255, G: 255, B: 255, A: 255},
		"#FF8000": {R: 255, G: 128, B: 0, A: 255},
		"red":     {R: 255, A: 255},
		" navy ":  {B: 128, A: 255},
	}
	for in, want := range cases {
		got, ok := ParseColor(in)
		if !ok || got != want {
			t.Errorf("ParseColor(%q) = %v, %v", in, got, ok)
		}
	}
	for _, bad := range []string{"", "#12", "#zzz", "notacolor"} {
		if _, ok := ParseColor(bad); ok {
			t.Errorf("ParseColor(%q) accepted", bad)
		}
	}
}

func layoutOf(t *testing.T, html string, w int) *Box {
	t.Helper()
	doc, err := ParseHTML(html)
	if err != nil {
		t.Fatal(err)
	}
	return Layout(doc, w)
}

func TestLayoutBlocksStackVertically(t *testing.T) {
	root := layoutOf(t, `<body><div id="a" style="height:30px"></div><div id="b" style="height:20px"></div></body>`, 200)
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	a, b := root.Children[0], root.Children[1]
	if b.Y < a.Y+30 {
		t.Fatalf("b (y=%d) overlaps a (y=%d h=%d)", b.Y, a.Y, a.H)
	}
	if root.H < 50 {
		t.Fatalf("root height %d too small", root.H)
	}
}

func TestLayoutTextWraps(t *testing.T) {
	long := strings.Repeat("word ", 40)
	root := layoutOf(t, "<body><p>"+long+"</p></body>", 120)
	p := root.Children[0]
	maxY := 0
	for _, c := range p.Children {
		if c.Text != "" {
			if c.X+c.W > 121 {
				t.Fatalf("text run exceeds width: %+v", c)
			}
			if c.Y > maxY {
				maxY = c.Y
			}
		}
	}
	if maxY == 0 {
		t.Fatal("text did not wrap to multiple lines")
	}
}

func TestLayoutHonoursDisplayNone(t *testing.T) {
	root := layoutOf(t, `<body><div style="display:none"><p>hidden</p></div></body>`, 100)
	if len(root.Children) != 0 {
		t.Fatalf("hidden subtree laid out: %d children", len(root.Children))
	}
}

func TestLayoutImagePlaceholder(t *testing.T) {
	root := layoutOf(t, `<body><img src="x" width="24" height="18"></body>`, 100)
	var img *Box
	for _, c := range root.Children {
		if c.Image {
			img = c
		}
	}
	if img == nil || img.W != 24 || img.H != 18 {
		t.Fatalf("img box = %+v", img)
	}
}

func TestPaintProducesDeterministicPixels(t *testing.T) {
	k := kernel.New(kernel.Config{Platform: vclock.Nexus7()})
	p, _ := k.NewProcess("p", kernel.PersonaAndroid)
	th := p.Main()
	html := `<body bgcolor="#102030"><h1 style="color:#fff">Title</h1><img src="i"></body>`
	render := func() uint32 {
		root := layoutOf(t, html, 64)
		cv := graphics2d.New(gpu.NewImage(64, 64), 1)
		Paint(th, cv, root, 0, 0)
		return cv.Image().Checksum()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("paint not deterministic")
	}
	root := layoutOf(t, html, 64)
	cv := graphics2d.New(gpu.NewImage(64, 64), 1)
	Paint(th, cv, root, 0, 0)
	if got := cv.Image().At(32, 40); got.R != 0x10 || got.G != 0x20 || got.B != 0x30 {
		t.Fatalf("background = %v", got)
	}
}
