package webkit

import (
	"strings"

	"cycada/internal/jsvm"
	"cycada/internal/sim/gpu"
)

var whiteRGBA = gpu.RGBA{R: 255, G: 255, B: 255, A: 255}

// installBindings exposes the DOM to page scripts: a document object with
// the query/mutation surface the workloads (and the Acid-like conformance
// suite) exercise. DOM mutations mark the browser dirty so the next Render
// relayouts.
func (b *Browser) installBindings() {
	wrappers := map[*Node]*jsvm.Object{}

	var wrap func(n *Node) jsvm.Value
	wrap = func(n *Node) jsvm.Value {
		if n == nil {
			return jsvm.Null{}
		}
		if w, ok := wrappers[n]; ok {
			return w
		}
		w := jsvm.NewObject()
		wrappers[n] = w
		w.Set("tagName", strings.ToUpper(n.Tag))
		w.Set("id", n.ID())
		w.Set("nodeType", float64(1))
		w.Set("getText", jsvm.GoFunc("getText", func(args []jsvm.Value) (jsvm.Value, error) {
			return n.TextContent(), nil
		}))
		w.Set("setText", jsvm.GoFunc("setText", func(args []jsvm.Value) (jsvm.Value, error) {
			if len(args) > 0 {
				n.SetTextContent(jsvm.ToString(args[0]))
				b.MarkDirty()
			}
			return jsvm.Undefined{}, nil
		}))
		w.Set("getAttribute", jsvm.GoFunc("getAttribute", func(args []jsvm.Value) (jsvm.Value, error) {
			if len(args) == 0 {
				return jsvm.Null{}, nil
			}
			v := n.Attr(jsvm.ToString(args[0]))
			if v == "" {
				return jsvm.Null{}, nil
			}
			return v, nil
		}))
		w.Set("setAttribute", jsvm.GoFunc("setAttribute", func(args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 2 {
				n.SetAttr(jsvm.ToString(args[0]), jsvm.ToString(args[1]))
				b.MarkDirty()
			}
			return jsvm.Undefined{}, nil
		}))
		w.Set("appendChild", jsvm.GoFunc("appendChild", func(args []jsvm.Value) (jsvm.Value, error) {
			if len(args) == 0 {
				return jsvm.Null{}, nil
			}
			child, ok := args[0].(*jsvm.Object)
			if !ok {
				return nil, jsvm.Errorf("appendChild: not a node")
			}
			for node, wr := range wrappers {
				if wr == child {
					n.Append(node)
					b.MarkDirty()
					return child, nil
				}
			}
			return nil, jsvm.Errorf("appendChild: unknown node")
		}))
		w.Set("removeChild", jsvm.GoFunc("removeChild", func(args []jsvm.Value) (jsvm.Value, error) {
			if len(args) == 0 {
				return jsvm.Null{}, nil
			}
			child, ok := args[0].(*jsvm.Object)
			if !ok {
				return nil, jsvm.Errorf("removeChild: not a node")
			}
			for node, wr := range wrappers {
				if wr == child {
					if n.RemoveChild(node) {
						b.MarkDirty()
						return child, nil
					}
					return nil, jsvm.Errorf("removeChild: not a child")
				}
			}
			return nil, jsvm.Errorf("removeChild: unknown node")
		}))
		w.Set("childCount", jsvm.GoFunc("childCount", func(args []jsvm.Value) (jsvm.Value, error) {
			return float64(len(n.Children)), nil
		}))
		w.Set("parentNode", jsvm.GoFunc("parentNode", func(args []jsvm.Value) (jsvm.Value, error) {
			return wrap(n.Parent), nil
		}))
		w.Set("firstChild", jsvm.GoFunc("firstChild", func(args []jsvm.Value) (jsvm.Value, error) {
			for _, c := range n.Children {
				if c.Kind == ElementNode {
					return wrap(c), nil
				}
			}
			return jsvm.Null{}, nil
		}))
		return w
	}

	doc := jsvm.NewObject()
	doc.Set("title", b.doc.Title)
	doc.Set("getElementById", jsvm.GoFunc("getElementById", func(args []jsvm.Value) (jsvm.Value, error) {
		if len(args) == 0 {
			return jsvm.Null{}, nil
		}
		return wrap(b.doc.GetElementByID(jsvm.ToString(args[0]))), nil
	}))
	doc.Set("getElementsByTagName", jsvm.GoFunc("getElementsByTagName", func(args []jsvm.Value) (jsvm.Value, error) {
		out := &jsvm.Array{}
		if len(args) == 0 {
			return out, nil
		}
		for _, n := range b.doc.GetElementsByTagName(jsvm.ToString(args[0])) {
			out.Elems = append(out.Elems, wrap(n))
		}
		return out, nil
	}))
	doc.Set("createElement", jsvm.GoFunc("createElement", func(args []jsvm.Value) (jsvm.Value, error) {
		if len(args) == 0 {
			return nil, jsvm.Errorf("createElement: missing tag")
		}
		return wrap(NewElement(jsvm.ToString(args[0]))), nil
	}))
	doc.Set("createTextNode", jsvm.GoFunc("createTextNode", func(args []jsvm.Value) (jsvm.Value, error) {
		text := ""
		if len(args) > 0 {
			text = jsvm.ToString(args[0])
		}
		n := NewText(text)
		w := jsvm.NewObject()
		w.Set("nodeType", float64(3))
		wrappers[n] = w
		return w, nil
	}))
	doc.Set("body", wrap(b.doc.Body()))
	b.js.SetGlobal("document", doc)
}
