package webkit

import (
	"strconv"
	"strings"

	"cycada/internal/sim/gpu"
)

// Display is a box's layout mode.
type Display uint8

// Display values.
const (
	DisplayBlock Display = iota + 1
	DisplayInline
	DisplayNone
)

// Style is the computed style of a node: defaults by tag, overridden by the
// style attribute (a CSS-lite "prop: value; ..." list) and legacy attributes
// (bgcolor, width, height).
type Style struct {
	Display    Display
	Color      gpu.RGBA
	Background gpu.RGBA // A==0 means transparent
	FontSize   int
	Bold       bool
	Margin     int
	Padding    int
	Width      int // 0 = auto
	Height     int // 0 = auto
	Border     int
}

var blockTags = map[string]bool{
	"html": true, "body": true, "div": true, "p": true, "h1": true, "h2": true,
	"h3": true, "ul": true, "ol": true, "li": true, "table": true, "tr": true,
	"td": true, "header": true, "footer": true, "section": true, "form": true,
	"hr": true, "blockquote": true, "pre": true,
}

var hiddenTags = map[string]bool{
	"head": true, "script": true, "style": true, "title": true, "meta": true, "link": true,
}

// ComputeStyle computes a node's style given its parent's computed style.
func ComputeStyle(n *Node, parent *Style) Style {
	st := Style{
		Display:  DisplayInline,
		Color:    gpu.RGBA{A: 255}, // black
		FontSize: 14,
	}
	if parent != nil {
		st.Color = parent.Color
		st.FontSize = parent.FontSize
		st.Bold = parent.Bold
	}
	if n.Kind == TextNode {
		return st
	}
	if hiddenTags[n.Tag] {
		st.Display = DisplayNone
		return st
	}
	if blockTags[n.Tag] {
		st.Display = DisplayBlock
	}
	switch n.Tag {
	case "h1":
		st.FontSize = 24
		st.Bold = true
		st.Margin = 8
	case "h2":
		st.FontSize = 20
		st.Bold = true
		st.Margin = 6
	case "h3":
		st.FontSize = 16
		st.Bold = true
		st.Margin = 5
	case "p":
		st.Margin = 6
	case "b", "strong":
		st.Bold = true
	case "a":
		st.Color = gpu.RGBA{B: 238, A: 255}
	case "body":
		st.Padding = 4
		st.Background = gpu.RGBA{R: 255, G: 255, B: 255, A: 255}
	case "li":
		st.Margin = 2
	case "hr":
		st.Height = 2
		st.Background = gpu.RGBA{R: 128, G: 128, B: 128, A: 255}
	}
	if v := n.Attr("bgcolor"); v != "" {
		if c, ok := ParseColor(v); ok {
			st.Background = c
		}
	}
	if v := n.Attr("width"); v != "" {
		if px, err := strconv.Atoi(strings.TrimSuffix(v, "px")); err == nil {
			st.Width = px
		}
	}
	if v := n.Attr("height"); v != "" {
		if px, err := strconv.Atoi(strings.TrimSuffix(v, "px")); err == nil {
			st.Height = px
		}
	}
	applyInlineStyle(&st, n.Attr("style"))
	return st
}

func applyInlineStyle(st *Style, css string) {
	for _, decl := range strings.Split(css, ";") {
		parts := strings.SplitN(decl, ":", 2)
		if len(parts) != 2 {
			continue
		}
		prop := strings.TrimSpace(strings.ToLower(parts[0]))
		val := strings.TrimSpace(parts[1])
		switch prop {
		case "color":
			if c, ok := ParseColor(val); ok {
				st.Color = c
			}
		case "background", "background-color":
			if c, ok := ParseColor(val); ok {
				st.Background = c
			}
		case "font-size":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.FontSize = px
			}
		case "font-weight":
			st.Bold = val == "bold"
		case "display":
			switch val {
			case "none":
				st.Display = DisplayNone
			case "block":
				st.Display = DisplayBlock
			case "inline":
				st.Display = DisplayInline
			}
		case "margin":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.Margin = px
			}
		case "padding":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.Padding = px
			}
		case "width":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.Width = px
			}
		case "height":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.Height = px
			}
		case "border", "border-width":
			if px, err := strconv.Atoi(strings.TrimSuffix(val, "px")); err == nil {
				st.Border = px
			}
		}
	}
}

// namedColors is the small palette sample pages use.
var namedColors = map[string]gpu.RGBA{
	"black":  {A: 255},
	"white":  {R: 255, G: 255, B: 255, A: 255},
	"red":    {R: 255, A: 255},
	"green":  {G: 128, A: 255},
	"lime":   {G: 255, A: 255},
	"blue":   {B: 255, A: 255},
	"yellow": {R: 255, G: 255, A: 255},
	"gray":   {R: 128, G: 128, B: 128, A: 255},
	"grey":   {R: 128, G: 128, B: 128, A: 255},
	"silver": {R: 192, G: 192, B: 192, A: 255},
	"orange": {R: 255, G: 165, A: 255},
	"purple": {R: 128, B: 128, A: 255},
	"navy":   {B: 128, A: 255},
	"teal":   {G: 128, B: 128, A: 255},
}

// ParseColor parses #rgb, #rrggbb and named colors.
func ParseColor(s string) (gpu.RGBA, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if c, ok := namedColors[s]; ok {
		return c, true
	}
	if strings.HasPrefix(s, "#") {
		hexStr := s[1:]
		switch len(hexStr) {
		case 3:
			var out gpu.RGBA
			vals := make([]uint8, 3)
			for i := 0; i < 3; i++ {
				v, err := strconv.ParseUint(string(hexStr[i]), 16, 8)
				if err != nil {
					return gpu.RGBA{}, false
				}
				vals[i] = uint8(v * 17)
			}
			out = gpu.RGBA{R: vals[0], G: vals[1], B: vals[2], A: 255}
			return out, true
		case 6:
			v, err := strconv.ParseUint(hexStr, 16, 32)
			if err != nil {
				return gpu.RGBA{}, false
			}
			return gpu.RGBA{R: uint8(v >> 16), G: uint8(v >> 8), B: uint8(v), A: 255}, true
		}
	}
	return gpu.RGBA{}, false
}
