// Package webkit implements the simulation's browser engine — the stand-in
// for the 5-million-line WebKit the paper's evaluation centres on. It has
// the pieces the graphics bridge must support: an HTML parser and DOM, a
// CSS-lite style system, block/inline layout, tile-based GPU rendering
// (CPU-painted tiles uploaded as GLES textures and composited with a GLES 2
// context on a dedicated render thread), and script execution through the
// jsvm engine.
//
// The engine is platform-neutral; a Port (port.go) supplies the graphics
// context, presentation path, 2D paint cost and JS engine. The iOS port runs
// identically on native iOS and on Cycada — where every GLES call it makes
// becomes a diplomat.
package webkit

import (
	"fmt"
	"strings"
	"unicode"
)

// NodeKind distinguishes element and text nodes.
type NodeKind uint8

// Node kinds.
const (
	ElementNode NodeKind = iota + 1
	TextNode
)

// Node is a DOM node.
type Node struct {
	Kind     NodeKind
	Tag      string // lower-case element tag
	Text     string // text content for TextNode
	Attrs    map[string]string
	Children []*Node
	Parent   *Node
}

// NewElement creates an element node.
func NewElement(tag string) *Node {
	return &Node{Kind: ElementNode, Tag: strings.ToLower(tag), Attrs: map[string]string{}}
}

// NewText creates a text node.
func NewText(text string) *Node {
	return &Node{Kind: TextNode, Text: text}
}

// Append adds a child.
func (n *Node) Append(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// RemoveChild removes a direct child.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return true
		}
	}
	return false
}

// Attr reads an attribute.
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[strings.ToLower(name)]
}

// SetAttr writes an attribute.
func (n *Node) SetAttr(name, value string) {
	if n.Attrs == nil {
		n.Attrs = map[string]string{}
	}
	n.Attrs[strings.ToLower(name)] = value
}

// ID returns the id attribute.
func (n *Node) ID() string { return n.Attr("id") }

// TextContent concatenates the text of the subtree.
func (n *Node) TextContent() string {
	if n.Kind == TextNode {
		return n.Text
	}
	var b strings.Builder
	for _, c := range n.Children {
		b.WriteString(c.TextContent())
	}
	return b.String()
}

// SetTextContent replaces the children with one text node.
func (n *Node) SetTextContent(s string) {
	n.Children = nil
	if s != "" {
		n.Append(NewText(s))
	}
}

// Find returns the first descendant (or self) matching pred, depth-first.
func (n *Node) Find(pred func(*Node) bool) *Node {
	if pred(n) {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(pred); m != nil {
			return m
		}
	}
	return nil
}

// FindAll collects all matching descendants (including self).
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	if pred(n) {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, c.FindAll(pred)...)
	}
	return out
}

// Document is a parsed page.
type Document struct {
	Root  *Node // <html>
	Title string
}

// GetElementByID implements document.getElementById.
func (d *Document) GetElementByID(id string) *Node {
	if id == "" {
		return nil
	}
	return d.Root.Find(func(n *Node) bool { return n.Kind == ElementNode && n.ID() == id })
}

// GetElementsByTagName implements document.getElementsByTagName.
func (d *Document) GetElementsByTagName(tag string) []*Node {
	tag = strings.ToLower(tag)
	return d.Root.FindAll(func(n *Node) bool { return n.Kind == ElementNode && n.Tag == tag })
}

// Body returns the <body> element.
func (d *Document) Body() *Node {
	return d.Root.Find(func(n *Node) bool { return n.Tag == "body" })
}

// Scripts returns the <script> bodies in document order.
func (d *Document) Scripts() []string {
	var out []string
	for _, s := range d.Root.FindAll(func(n *Node) bool { return n.Tag == "script" }) {
		out = append(out, s.TextContent())
	}
	return out
}

// voidTags never have children.
var voidTags = map[string]bool{
	"br": true, "img": true, "hr": true, "input": true, "meta": true, "link": true,
}

// ParseHTML parses a forgiving HTML subset into a Document. Unknown tags
// become generic elements; mismatched close tags close the nearest matching
// ancestor, like real tree builders.
func ParseHTML(src string) (*Document, error) {
	root := NewElement("html")
	stack := []*Node{root}
	top := func() *Node { return mustTop(stack) }
	i := 0
	for i < len(src) {
		if src[i] == '<' {
			if strings.HasPrefix(src[i:], "<!--") {
				end := strings.Index(src[i+4:], "-->")
				if end < 0 {
					break
				}
				i += 4 + end + 3
				continue
			}
			if strings.HasPrefix(src[i:], "<!") { // doctype
				end := strings.IndexByte(src[i:], '>')
				if end < 0 {
					break
				}
				i += end + 1
				continue
			}
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("webkit: unterminated tag at offset %d", i)
			}
			tagSrc := src[i+1 : i+end]
			i += end + 1
			if strings.HasPrefix(tagSrc, "/") {
				closeTag := strings.ToLower(strings.TrimSpace(tagSrc[1:]))
				for j := len(stack) - 1; j > 0; j-- {
					if stack[j].Tag == closeTag {
						stack = stack[:j]
						break
					}
				}
				continue
			}
			selfClose := strings.HasSuffix(tagSrc, "/")
			tagSrc = strings.TrimSuffix(tagSrc, "/")
			el, err := parseTag(tagSrc)
			if err != nil {
				return nil, err
			}
			if el.Tag == "html" {
				// Merge attributes onto the implicit root.
				for k, v := range el.Attrs {
					root.SetAttr(k, v)
				}
				continue
			}
			top().Append(el)
			if el.Tag == "script" || el.Tag == "style" {
				// Raw text until the close tag.
				lower := strings.ToLower(src)
				closeMark := "</" + el.Tag
				endIdx := strings.Index(lower[i:], closeMark)
				if endIdx < 0 {
					return nil, fmt.Errorf("webkit: unterminated <%s>", el.Tag)
				}
				el.Append(NewText(src[i : i+endIdx]))
				i += endIdx
				gt := strings.IndexByte(src[i:], '>')
				if gt < 0 {
					break
				}
				i += gt + 1
				continue
			}
			if !selfClose && !voidTags[el.Tag] {
				stack = append(stack, el)
			}
			continue
		}
		next := strings.IndexByte(src[i:], '<')
		if next < 0 {
			next = len(src) - i
		}
		text := src[i : i+next]
		i += next
		if collapsed := collapseSpace(text); collapsed != "" {
			top().Append(NewText(collapsed))
		}
	}
	doc := &Document{Root: root}
	if t := root.Find(func(n *Node) bool { return n.Tag == "title" }); t != nil {
		doc.Title = strings.TrimSpace(t.TextContent())
	}
	return doc, nil
}

func mustTop(stack []*Node) *Node { return stack[len(stack)-1] }

func parseTag(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("webkit: empty tag")
	}
	nameEnd := 0
	for nameEnd < len(s) && !unicode.IsSpace(rune(s[nameEnd])) {
		nameEnd++
	}
	el := NewElement(s[:nameEnd])
	rest := strings.TrimSpace(s[nameEnd:])
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		sp := strings.IndexFunc(rest, unicode.IsSpace)
		if eq < 0 || (sp >= 0 && sp < eq) {
			// Bare attribute.
			name := rest
			if sp >= 0 {
				name = rest[:sp]
				rest = strings.TrimSpace(rest[sp:])
			} else {
				rest = ""
			}
			el.SetAttr(name, "")
			continue
		}
		name := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		var val string
		if rest != "" && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			endQ := strings.IndexByte(rest[1:], q)
			if endQ < 0 {
				return nil, fmt.Errorf("webkit: unterminated attribute value for %q", name)
			}
			val = rest[1 : 1+endQ]
			rest = strings.TrimSpace(rest[2+endQ:])
		} else {
			sp := strings.IndexFunc(rest, unicode.IsSpace)
			if sp < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:sp], strings.TrimSpace(rest[sp:])
			}
		}
		el.SetAttr(name, val)
	}
	return el, nil
}

// collapseSpace collapses whitespace runs to single spaces, preserving one
// boundary space on each side (so "some <b>bold</b> text" keeps its word
// separation) and dropping whitespace-only runs entirely.
func collapseSpace(s string) string {
	var b strings.Builder
	inSpace := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			if !inSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			inSpace = true
			continue
		}
		inSpace = false
		b.WriteRune(r)
	}
	out := b.String()
	if strings.TrimSpace(out) == "" {
		return ""
	}
	if unicode.IsSpace(rune(s[0])) && !strings.HasPrefix(out, " ") {
		out = " " + out
	}
	return out
}
