// Package androidport is the Android WebKit port (the Chrome-like browser of
// the evaluation): EGL window surface + GLES 2 context created and used by a
// dedicated render thread — structured within Android's creator-only
// threading rules, so it needs no impersonation even under Cycada.
package androidport

import (
	"fmt"

	"cycada/internal/android/egl"
	"cycada/internal/android/stack"
	"cycada/internal/gles/engine"
	"cycada/internal/gles/glesapi"
	"cycada/internal/graphics2d"
	"cycada/internal/jsvm"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/webkit"
)

// Config wires the port to an Android userspace.
type Config struct {
	Userspace *stack.Userspace
	X, Y      int
	W, H      int
	JSOptions []jsvm.Option
}

// Port implements webkit.Port.
type Port struct {
	cfg    Config
	render *kernel.Thread
	gl     *glesapi.GL
	ctx    *engine.Context
	surf   *egl.Surface
}

var _ webkit.Port = (*Port)(nil)

// New creates the port.
func New(cfg Config) (*Port, error) {
	us := cfg.Userspace
	p := &Port{cfg: cfg}
	p.render = us.Proc.NewThread("CrRenderer")

	surf, err := us.EGL.CreateWindowSurface(p.render, cfg.X, cfg.Y, cfg.W, cfg.H)
	if err != nil {
		return nil, fmt.Errorf("androidport: %w", err)
	}
	p.surf = surf
	ctx, err := us.EGL.CreateContext(p.render, 2, nil)
	if err != nil {
		return nil, fmt.Errorf("androidport: %w", err)
	}
	p.ctx = ctx
	if err := us.EGL.MakeCurrent(p.render, surf, ctx); err != nil {
		return nil, fmt.Errorf("androidport: %w", err)
	}
	h, err := us.Linker.Dlopen(us.Proc.Main(), glesLibName)
	if err != nil {
		return nil, fmt.Errorf("androidport: %w", err)
	}
	p.gl = glesapi.New(us.Linker, h)
	return p, nil
}

const glesLibName = "libGLESv2_tegra.so"

// Name implements webkit.Port.
func (p *Port) Name() string { return "android" }

// MainThread implements webkit.Port.
func (p *Port) MainThread() *kernel.Thread { return p.cfg.Userspace.Proc.Main() }

// RenderThread implements webkit.Port.
func (p *Port) RenderThread() *kernel.Thread { return p.render }

// GL implements webkit.Port.
func (p *Port) GL() *glesapi.GL { return p.gl }

// MakeCurrent implements webkit.Port; only the render thread (the context's
// creator) may bind it — Android's restriction, which this port is designed
// around.
func (p *Port) MakeCurrent(t *kernel.Thread) error {
	return p.cfg.Userspace.EGL.MakeCurrent(t, p.surf, p.ctx)
}

// ViewSize implements webkit.Port.
func (p *Port) ViewSize() (int, int) { return p.cfg.W, p.cfg.H }

// NewTileCanvas implements webkit.Port: the Android 2D path (skia-like
// canvas) over plain memory.
func (p *Port) NewTileCanvas(t *kernel.Thread, w, h int) (*graphics2d.Canvas, error) {
	return graphics2d.New(gpu.NewImage(w, h), t.Costs().PerPixelCPUDraw), nil
}

// UploadTile implements webkit.Port.
func (p *Port) UploadTile(t *kernel.Thread, tex uint32, cv *graphics2d.Canvas) error {
	img := cv.Image()
	p.gl.BindTexture(t, tex)
	p.gl.TexImage2D(t, img.W, img.H, gpu.FormatRGBA8888, nil)
	p.gl.TexSubImage2D(t, 0, 0, img.W, img.H, gpu.FormatRGBA8888, img.Pix)
	return nil
}

// Present implements webkit.Port via eglSwapBuffers.
func (p *Port) Present(t *kernel.Thread) error {
	return p.cfg.Userspace.EGL.SwapBuffers(t, p.surf)
}

// NewJSEngine implements webkit.Port.
func (p *Port) NewJSEngine(t *kernel.Thread) *jsvm.Engine {
	return jsvm.New(t, p.cfg.JSOptions...)
}
