package webkit

import (
	"cycada/internal/gles/glesapi"
	"cycada/internal/graphics2d"
	"cycada/internal/jsvm"
	"cycada/internal/sim/kernel"
)

// threadish aliases the simulated thread type used throughout painting.
type threadish = *kernel.Thread

// Port supplies the platform pieces the engine needs — the WebKit "port" in
// real WebKit terminology. internal/webkit/iosport and androidport implement
// it; the iOS port is what runs under Cycada, where every graphics call it
// makes crosses the compatibility layer.
type Port interface {
	Name() string

	// MainThread is the app thread scripts run on.
	MainThread() *kernel.Thread
	// RenderThread is the dedicated rendering thread WebKit spawns — "the
	// iOS WebKit library spawns a rendering thread that allocates and
	// initializes its own GLES context which is used by other threads
	// related to WebKit" (paper §7).
	RenderThread() *kernel.Thread

	// GL returns the platform GLES facade.
	GL() *glesapi.GL
	// MakeCurrent binds the view's GLES context on the given thread (on the
	// iOS port under Cycada this triggers thread impersonation when t is
	// not the context's creator).
	MakeCurrent(t *kernel.Thread) error
	// ViewSize reports the view dimensions in pixels.
	ViewSize() (w, h int)
	// NewTileCanvas allocates a CPU paint target for one tile; Upload pushes
	// the painted tile into the given texture.
	NewTileCanvas(t *kernel.Thread, w, h int) (*graphics2d.Canvas, error)
	UploadTile(t *kernel.Thread, tex uint32, cv *graphics2d.Canvas) error
	// Present displays the composited frame (EAGL presentRenderbuffer on
	// iOS, eglSwapBuffers on Android).
	Present(t *kernel.Thread) error
	// NewJSEngine creates the script engine for a page (JIT availability
	// depends on the process — the Mach VM bug surfaces here).
	NewJSEngine(t *kernel.Thread) *jsvm.Engine
}
