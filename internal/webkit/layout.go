package webkit

import (
	"cycada/internal/graphics2d"
	"cycada/internal/sim/gpu"
)

// Box is one laid-out rectangle: a block box, an inline text run, or an
// image placeholder.
type Box struct {
	Node     *Node
	Style    Style
	X, Y     int
	W, H     int
	Text     string // for text runs
	Image    bool   // <img> placeholder
	Children []*Box
}

// Layout computes the box tree of a document for a viewport width. The
// returned root box's H is the page height.
func Layout(doc *Document, viewportW int) *Box {
	body := doc.Body()
	if body == nil {
		body = doc.Root
	}
	st := ComputeStyle(body, nil)
	root := &Box{Node: body, Style: st, X: 0, Y: 0, W: viewportW}
	lay := &layouter{}
	lay.block(root)
	return root
}

type layouter struct{}

// block lays out a block box's children and sets its height.
func (l *layouter) block(b *Box) {
	x := b.X + b.Style.Padding + b.Style.Border
	y := b.Y + b.Style.Padding + b.Style.Border
	contentW := b.W - 2*(b.Style.Padding+b.Style.Border)
	if contentW < 8 {
		contentW = 8
	}

	cursor := y
	var inlineRun []*Node
	flushInline := func() {
		if len(inlineRun) == 0 {
			return
		}
		h := l.inlineFlow(b, inlineRun, x, cursor, contentW)
		cursor += h
		inlineRun = nil
	}

	for _, child := range b.Node.Children {
		st := ComputeStyle(child, &b.Style)
		if st.Display == DisplayNone {
			continue
		}
		if child.Kind == TextNode || st.Display == DisplayInline {
			inlineRun = append(inlineRun, child)
			continue
		}
		flushInline()
		cursor += st.Margin
		cb := &Box{Node: child, Style: st, X: x, Y: cursor, W: contentW}
		if st.Width > 0 && st.Width < contentW {
			cb.W = st.Width
		}
		l.block(cb)
		if st.Height > 0 {
			cb.H = st.Height
		}
		b.Children = append(b.Children, cb)
		cursor += cb.H + st.Margin
	}
	flushInline()

	b.H = cursor - b.Y + b.Style.Padding + b.Style.Border
	if b.Style.Height > 0 {
		b.H = b.Style.Height
	}
}

// inlineFlow lays out a run of inline content with word wrap, returning the
// consumed height.
func (l *layouter) inlineFlow(parent *Box, run []*Node, x, y, w int) int {
	cx, cy := x, y
	lineH := 0
	var emit func(n *Node, st Style)
	advanceLine := func(h int) {
		cx = x
		cy += h
		lineH = 0
	}
	emit = func(n *Node, st Style) {
		if n.Kind == ElementNode {
			if n.Tag == "br" {
				h := st.FontSize + 4
				if lineH > h {
					h = lineH
				}
				advanceLine(h)
				return
			}
			if n.Tag == "img" {
				iw, ih := 40, 30
				if st.Width > 0 {
					iw = st.Width
				}
				if st.Height > 0 {
					ih = st.Height
				}
				if cx+iw > x+w && cx > x {
					advanceLine(max(lineH, 1))
				}
				parent.Children = append(parent.Children, &Box{
					Node: n, Style: st, X: cx, Y: cy, W: iw, H: ih, Image: true,
				})
				cx += iw + 2
				if ih > lineH {
					lineH = ih
				}
				return
			}
			for _, c := range n.Children {
				cst := ComputeStyle(c, &st)
				if cst.Display == DisplayNone {
					continue
				}
				emit(c, cst)
			}
			return
		}
		// Text: word wrap.
		words := splitWords(n.Text)
		fh := st.FontSize + 4
		for _, word := range words {
			adv := graphics2d.TextAdvance(word, st.FontSize)
			if cx+adv > x+w && cx > x {
				advanceLine(max(lineH, fh))
			}
			parent.Children = append(parent.Children, &Box{
				Node: n, Style: st, X: cx, Y: cy, W: adv, H: fh, Text: word,
			})
			cx += adv + graphics2d.TextAdvance(" ", st.FontSize)
			if fh > lineH {
				lineH = fh
			}
		}
	}
	for _, n := range run {
		st := ComputeStyle(n, &parent.Style)
		emit(n, st)
	}
	if cx > x && lineH == 0 {
		lineH = parent.Style.FontSize + 4
	}
	return cy + lineH - y
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Paint draws the box tree into a canvas (one tile or a whole-page image),
// offset so that (offX, offY) of the page lands at the canvas origin.
func Paint(t canvasThread, cv *graphics2d.Canvas, b *Box, offX, offY int) {
	paintBox(t, cv, b, offX, offY)
}

// canvasThread is the minimal thread surface painting needs; it keeps this
// file decoupled from the kernel package in signatures (the concrete type is
// *kernel.Thread).
type canvasThread = threadish

func paintBox(t threadish, cv *graphics2d.Canvas, b *Box, offX, offY int) {
	x, y := b.X-offX, b.Y-offY
	if b.Style.Background.A > 0 && !b.Image && b.Text == "" {
		cv.SetFill(b.Style.Background)
		cv.FillRect(t, x, y, x+b.W, y+b.H)
	}
	if b.Style.Border > 0 {
		cv.SetStroke(b.Style.Color)
		cv.StrokeLine(t, x, y, x+b.W-1, y)
		cv.StrokeLine(t, x+b.W-1, y, x+b.W-1, y+b.H-1)
		cv.StrokeLine(t, x+b.W-1, y+b.H-1, x, y+b.H-1)
		cv.StrokeLine(t, x, y+b.H-1, x, y)
	}
	switch {
	case b.Text != "":
		cv.SetFill(b.Style.Color)
		cv.DrawText(t, x, y+2, b.Text, b.Style.FontSize)
	case b.Image:
		paintImagePlaceholder(t, cv, b, x, y)
	}
	for _, c := range b.Children {
		paintBox(t, cv, c, offX, offY)
	}
}

// paintImagePlaceholder draws a deterministic pattern for an <img>, seeded by
// its src, so pages render identically across configurations.
func paintImagePlaceholder(t threadish, cv *graphics2d.Canvas, b *Box, x, y int) {
	seed := uint32(2166136261)
	for _, c := range []byte(b.Node.Attr("src")) {
		seed = (seed ^ uint32(c)) * 16777619
	}
	base := gpu.RGBA{R: uint8(seed), G: uint8(seed >> 8), B: uint8(seed >> 16), A: 255}
	cv.SetFill(base)
	cv.FillRect(t, x, y, x+b.W, y+b.H)
	cv.SetFill(gpu.RGBA{R: base.G, G: base.B, B: base.R, A: 255})
	for i := 0; i < b.W; i += 8 {
		cv.FillRect(t, x+i, y, x+i+4, y+b.H)
	}
}
