package webkit

import (
	"fmt"

	"cycada/internal/gles/engine"
	"cycada/internal/jsvm"
	"cycada/internal/sim/kernel"
)

// TileSize is the edge length of the render tiles the compositor uses.
const TileSize = 128

// Browser drives one page through the engine: parse → script → layout →
// tile paint → GPU composite → present.
type Browser struct {
	port Port
	doc  *Document
	js   *jsvm.Engine

	dirty bool

	glReady bool
	prog    uint32
	posLoc  int
	uvLoc   int
	texLoc  int
	tiles   []*tile
	frames  int
}

type tile struct {
	tex    uint32
	px, py int // page position
	w, h   int
}

// NewBrowser creates a browser over a port.
func NewBrowser(port Port) *Browser {
	return &Browser{port: port}
}

// Document returns the loaded document.
func (b *Browser) Document() *Document { return b.doc }

// JS returns the page's script engine (nil before Load).
func (b *Browser) JS() *jsvm.Engine { return b.js }

// Frames reports how many frames have been presented.
func (b *Browser) Frames() int { return b.frames }

// Load parses a page, runs its scripts and renders the first frame.
func (b *Browser) Load(html string) error {
	doc, err := ParseHTML(html)
	if err != nil {
		return err
	}
	b.doc = doc
	main := b.port.MainThread()
	b.js = b.port.NewJSEngine(main)
	b.installBindings()
	for _, script := range doc.Scripts() {
		if _, err := b.js.Run(script); err != nil {
			return fmt.Errorf("webkit: page script: %w", err)
		}
	}
	b.dirty = true
	return b.Render()
}

// RunScript executes script text against the loaded page.
func (b *Browser) RunScript(src string) (jsvm.Value, error) {
	if b.js == nil {
		return nil, fmt.Errorf("webkit: no page loaded")
	}
	v, err := b.js.Run(src)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Render lays out and draws the page; it runs rendering work on the port's
// render thread, which is the multi-threaded GLES usage (paper §7) the
// Cycada backend must support via impersonation.
func (b *Browser) Render() error {
	if b.doc == nil {
		return fmt.Errorf("webkit: no page loaded")
	}
	rt := b.port.RenderThread()
	if err := b.port.MakeCurrent(rt); err != nil {
		return fmt.Errorf("webkit render: %w", err)
	}
	if err := b.ensureGL(rt); err != nil {
		return err
	}
	gl := b.port.GL()
	vw, vh := b.port.ViewSize()

	if b.dirty {
		root := Layout(b.doc, vw)
		_ = root.H
		if err := b.paintTiles(rt, root, vw, vh); err != nil {
			return err
		}
		b.dirty = false
	}

	// Composite: clear, then draw each tile as a textured quad.
	gl.ClearColor(rt, 1, 1, 1, 1)
	gl.Clear(rt, engine.ColorBufferBit)
	gl.UseProgram(rt, b.prog)
	gl.Uniform1i(rt, b.texLoc, 0)
	gl.ActiveTexture(rt, 0)
	for _, tl := range b.tiles {
		gl.BindTexture(rt, tl.tex)
		x0 := 2*float32(tl.px)/float32(vw) - 1
		x1 := 2*float32(tl.px+tl.w)/float32(vw) - 1
		y0 := 1 - 2*float32(tl.py)/float32(vh)
		y1 := 1 - 2*float32(tl.py+tl.h)/float32(vh)
		pos := []float32{
			x0, y1, 0, 1,
			x1, y1, 0, 1,
			x1, y0, 0, 1,
			x0, y0, 0, 1,
		}
		uv := []float32{0, 1, 1, 1, 1, 0, 0, 0}
		gl.VertexAttribPointer(rt, b.posLoc, 4, pos)
		gl.EnableVertexAttribArray(rt, b.posLoc)
		gl.VertexAttribPointer(rt, b.uvLoc, 2, uv)
		gl.EnableVertexAttribArray(rt, b.uvLoc)
		gl.DrawElements(rt, engine.Triangles, []uint16{0, 1, 2, 0, 2, 3})
	}
	gl.Flush(rt)
	if e := gl.GetError(rt); e != engine.NoError {
		return fmt.Errorf("webkit render: GL error %#x", e)
	}
	if err := b.port.Present(rt); err != nil {
		return err
	}
	b.frames++
	return nil
}

// MarkDirty forces a relayout on the next Render (DOM mutations call it).
func (b *Browser) MarkDirty() { b.dirty = true }

const tileVS = `
attribute vec4 a_pos;
attribute vec2 a_uv;
varying vec2 v_uv;
void main() { gl_Position = a_pos; v_uv = a_uv; }
`

const tileFS = `
precision mediump float;
varying vec2 v_uv;
uniform sampler2D u_tex;
void main() { gl_FragColor = texture2D(u_tex, v_uv); }
`

func (b *Browser) ensureGL(rt *kernel.Thread) error {
	if b.glReady {
		return nil
	}
	gl := b.port.GL()
	vs := gl.CreateShader(rt, engine.VertexShaderKind)
	gl.ShaderSource(rt, vs, tileVS)
	gl.CompileShader(rt, vs)
	fs := gl.CreateShader(rt, engine.FragmentShaderKind)
	gl.ShaderSource(rt, fs, tileFS)
	gl.CompileShader(rt, fs)
	prog := gl.CreateProgram(rt)
	gl.AttachShader(rt, prog, vs)
	gl.AttachShader(rt, prog, fs)
	gl.LinkProgram(rt, prog)
	if gl.GetProgramiv(rt, prog, engine.LinkStatus) != 1 {
		return fmt.Errorf("webkit: tile shader link: %s", gl.GetProgramInfoLog(rt, prog))
	}
	b.prog = prog
	b.posLoc = gl.GetAttribLocation(rt, prog, "a_pos")
	b.uvLoc = gl.GetAttribLocation(rt, prog, "a_uv")
	b.texLoc = gl.GetUniformLocation(rt, prog, "u_tex")

	// Tile grid over the viewport.
	vw, vh := b.port.ViewSize()
	for y := 0; y < vh; y += TileSize {
		for x := 0; x < vw; x += TileSize {
			w := min(TileSize, vw-x)
			h := min(TileSize, vh-y)
			texs := gl.GenTextures(rt, 1)
			b.tiles = append(b.tiles, &tile{tex: texs[0], px: x, py: y, w: w, h: h})
		}
	}
	b.glReady = true
	return nil
}

// paintTiles CPU-paints each tile and uploads it; the uploads are the
// glTexSubImage2D traffic in the paper's Figure 7 profile, and the old tile
// contents torn down on reload are its glDeleteTextures traffic.
func (b *Browser) paintTiles(rt *kernel.Thread, root *Box, vw, vh int) error {
	gl := b.port.GL()
	for _, tl := range b.tiles {
		cv, err := b.port.NewTileCanvas(rt, tl.w, tl.h)
		if err != nil {
			return err
		}
		cv.Clear(rt, whiteRGBA)
		Paint(rt, cv, root, tl.px, tl.py)
		gl.BindTexture(rt, tl.tex)
		if err := b.port.UploadTile(rt, tl.tex, cv); err != nil {
			return err
		}
	}
	return nil
}

// ReloadTextures destroys and recreates the tile textures (page navigation),
// generating the delete-texture traffic real WebKit produces.
func (b *Browser) ReloadTextures() error {
	if !b.glReady {
		return nil
	}
	rt := b.port.RenderThread()
	if err := b.port.MakeCurrent(rt); err != nil {
		return err
	}
	gl := b.port.GL()
	var ids []uint32
	for _, tl := range b.tiles {
		ids = append(ids, tl.tex)
	}
	gl.DeleteTextures(rt, ids)
	for _, tl := range b.tiles {
		texs := gl.GenTextures(rt, 1)
		tl.tex = texs[0]
	}
	b.dirty = true
	return nil
}
