// Package iosport is the iOS WebKit port: rendering through EAGL + GLES 2
// on a dedicated render thread, tile painting through CoreGraphics into
// IOSurfaces, and scripts through a JavaScriptCore-like engine whose JIT
// depends on executable memory.
//
// The port runs unmodified on native iOS (internal/ios/iosys) and on Cycada
// (internal/core/system) — under Cycada its EAGL calls become multi
// diplomats, its cross-thread context use goes through impersonation, and
// its IOSurface locks run the §6.2 dance.
package iosport

import (
	"fmt"

	"cycada/internal/gles/glesapi"
	"cycada/internal/graphics2d"
	"cycada/internal/ios/eagl"
	"cycada/internal/ios/iosurface"
	"cycada/internal/jsvm"
	"cycada/internal/sim/gpu"
	"cycada/internal/sim/kernel"
	"cycada/internal/webkit"
)

// Config wires the port to an iOS app environment (native or Cycada).
type Config struct {
	Proc     *kernel.Process
	EAGL     *eagl.Lib
	GL       *glesapi.GL
	Surfaces *iosurface.Lib
	NewLayer func(t *kernel.Thread, x, y, w, h int) (*eagl.CAEAGLLayer, error)
	X, Y     int
	W, H     int
	// JSOptions configure the script engine (e.g. jsvm.WithoutJIT for the
	// Figure 5 "JIT disabled" series).
	JSOptions []jsvm.Option
}

// Port implements webkit.Port.
type Port struct {
	cfg    Config
	render *kernel.Thread
	ctx    *eagl.Context

	tileSurfs map[*graphics2d.Canvas]*iosurface.Surface
}

var _ webkit.Port = (*Port)(nil)

// New creates the port: it spawns the render thread, creates the EAGL GLES2
// context on it, and wires the layer's renderbuffer (paper §7's WebKit
// threading structure).
func New(cfg Config) (*Port, error) {
	p := &Port{cfg: cfg, tileSurfs: map[*graphics2d.Canvas]*iosurface.Surface{}}
	p.render = cfg.Proc.NewThread("WebKitRender")

	ctx, err := cfg.EAGL.NewContext(p.render, eagl.APIGLES2)
	if err != nil {
		return nil, fmt.Errorf("iosport: %w", err)
	}
	p.ctx = ctx
	if err := cfg.EAGL.SetCurrentContext(p.render, ctx); err != nil {
		return nil, fmt.Errorf("iosport: %w", err)
	}
	layer, err := cfg.NewLayer(p.render, cfg.X, cfg.Y, cfg.W, cfg.H)
	if err != nil {
		return nil, fmt.Errorf("iosport layer: %w", err)
	}
	gl := cfg.GL
	fbo := gl.GenFramebuffers(p.render, 1)
	gl.BindFramebuffer(p.render, fbo[0])
	rb := gl.GenRenderbuffers(p.render, 1)
	gl.BindRenderbuffer(p.render, rb[0])
	if err := ctx.RenderbufferStorageFromDrawable(p.render, layer); err != nil {
		return nil, fmt.Errorf("iosport storage: %w", err)
	}
	gl.FramebufferRenderbuffer(p.render, rb[0])
	return p, nil
}

// Name implements webkit.Port.
func (p *Port) Name() string { return "ios" }

// MainThread implements webkit.Port.
func (p *Port) MainThread() *kernel.Thread { return p.cfg.Proc.Main() }

// RenderThread implements webkit.Port.
func (p *Port) RenderThread() *kernel.Thread { return p.render }

// Context returns the port's EAGLContext (tests).
func (p *Port) Context() *eagl.Context { return p.ctx }

// GL implements webkit.Port.
func (p *Port) GL() *glesapi.GL { return p.cfg.GL }

// MakeCurrent implements webkit.Port: any thread may adopt the render
// thread's context (iOS semantics; impersonation under Cycada).
func (p *Port) MakeCurrent(t *kernel.Thread) error {
	return p.cfg.EAGL.SetCurrentContext(t, p.ctx)
}

// ViewSize implements webkit.Port.
func (p *Port) ViewSize() (int, int) { return p.cfg.W, p.cfg.H }

// NewTileCanvas implements webkit.Port: tiles are painted by CoreGraphics
// into locked IOSurfaces — the 2D/3D sharing pattern of §6.2.
func (p *Port) NewTileCanvas(t *kernel.Thread, w, h int) (*graphics2d.Canvas, error) {
	surf, err := p.cfg.Surfaces.Create(t, w, h, gpu.FormatRGBA8888)
	if err != nil {
		return nil, fmt.Errorf("iosport tile: %w", err)
	}
	if err := p.cfg.Surfaces.Lock(t, surf); err != nil {
		return nil, fmt.Errorf("iosport tile lock: %w", err)
	}
	cv := graphics2d.New(surf.BaseAddress(), t.Costs().PerPixelCPUDrawIOS)
	p.tileSurfs[cv] = surf
	return cv, nil
}

// UploadTile implements webkit.Port: the painted IOSurface is unlocked and
// its pixels uploaded into the tile texture.
func (p *Port) UploadTile(t *kernel.Thread, tex uint32, cv *graphics2d.Canvas) error {
	surf, ok := p.tileSurfs[cv]
	if !ok {
		return fmt.Errorf("iosport: unknown tile canvas")
	}
	delete(p.tileSurfs, cv)
	if err := p.cfg.Surfaces.Unlock(t, surf); err != nil {
		return err
	}
	img := surf.BaseAddress()
	gl := p.cfg.GL
	gl.BindTexture(t, tex)
	gl.TexImage2D(t, img.W, img.H, gpu.FormatRGBA8888, nil)
	gl.TexSubImage2D(t, 0, 0, img.W, img.H, gpu.FormatRGBA8888, img.Pix)
	return p.cfg.Surfaces.Release(t, surf)
}

// Present implements webkit.Port via presentRenderbuffer.
func (p *Port) Present(t *kernel.Thread) error {
	return p.ctx.PresentRenderbuffer(t)
}

// NewJSEngine implements webkit.Port.
func (p *Port) NewJSEngine(t *kernel.Thread) *jsvm.Engine {
	return jsvm.New(t, p.cfg.JSOptions...)
}
