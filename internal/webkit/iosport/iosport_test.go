package iosport_test

import (
	"strings"
	"testing"

	"cycada/internal/core/system"
	"cycada/internal/ios/iosys"
	"cycada/internal/jsvm"
	"cycada/internal/webkit"
	"cycada/internal/webkit/iosport"
)

const page = `
<html>
<head><title>Port Test</title></head>
<body bgcolor="#204060">
<h1 id="t">Tiles</h1>
<p id="p">rendered through the iOS port</p>
<script>document.getElementById("p").setAttribute("data-js", "ran");</script>
</body>
</html>
`

func cycadaBrowser(t *testing.T) (*webkit.Browser, *system.Cycada, *system.IOSApp) {
	t.Helper()
	sys := system.New(system.Config{})
	app, err := sys.NewIOSApp(system.AppConfig{Name: "safari"})
	if err != nil {
		t.Fatal(err)
	}
	port, err := iosport.New(iosport.Config{
		Proc:     app.Proc,
		EAGL:     app.EAGL,
		GL:       app.GL,
		Surfaces: app.Surfaces,
		NewLayer: app.NewLayer,
		W:        256, H: 192,
	})
	if err != nil {
		t.Fatal(err)
	}
	return webkit.NewBrowser(port), sys, app
}

func TestBrowserRendersOnCycada(t *testing.T) {
	b, sys, app := cycadaBrowser(t)
	if err := b.Load(page); err != nil {
		t.Fatal(err)
	}
	if b.Frames() != 1 {
		t.Fatalf("frames = %d", b.Frames())
	}
	// The page background reached the Android screen through the bridge
	// (the body box covers the top of the view; scan for its color).
	screen := sys.Android.Flinger.Screen()
	found := false
	for y := 0; y < 192 && !found; y++ {
		for x := 0; x < 256 && !found; x++ {
			if c := screen.At(x, y); c.R == 0x20 && c.G == 0x40 && c.B == 0x60 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("page background color never reached the screen")
	}
	// The page script ran and mutated the DOM.
	if got := b.Document().GetElementByID("p").Attr("data-js"); got != "ran" {
		t.Fatalf("data-js = %q", got)
	}
	// The render thread is distinct and the EAGL context lives on it (§7).
	if app.Profiler.Calls("aegl_bridge_set_tls") == 0 {
		t.Fatal("render never crossed set_tls (impersonation path)")
	}
}

func TestBrowserMatchesNativeIOSPixelForPixel(t *testing.T) {
	b1, sys1, _ := cycadaBrowser(t)
	if err := b1.Load(page); err != nil {
		t.Fatal(err)
	}

	ios := iosys.New(iosys.Config{})
	us, err := ios.NewUserspace("safari")
	if err != nil {
		t.Fatal(err)
	}
	port, err := iosport.New(iosport.Config{
		Proc:     us.Proc,
		EAGL:     us.EAGL,
		GL:       us.GL,
		Surfaces: us.Surfaces,
		NewLayer: us.NewLayer,
		W:        256, H: 192,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2 := webkit.NewBrowser(port)
	if err := b2.Load(page); err != nil {
		t.Fatal(err)
	}
	if sys1.Android.Flinger.Screen().Checksum() != ios.Framebuffer.Screen().Checksum() {
		t.Fatal("Cycada and native iOS renderings differ")
	}
}

func TestDOMMutationRerenders(t *testing.T) {
	b, sys, _ := cycadaBrowser(t)
	if err := b.Load(page); err != nil {
		t.Fatal(err)
	}
	before := sys.Android.Flinger.Screen().Checksum()
	if _, err := b.RunScript(`document.getElementById("t").setText("Changed Headline");`); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(); err != nil {
		t.Fatal(err)
	}
	if sys.Android.Flinger.Screen().Checksum() == before {
		t.Fatal("mutation did not change the rendering")
	}
}

func TestReloadTexturesKeepsRendering(t *testing.T) {
	b, sys, app := cycadaBrowser(t)
	if err := b.Load(page); err != nil {
		t.Fatal(err)
	}
	before := sys.Android.Flinger.Screen().Checksum()
	if err := b.ReloadTextures(); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(); err != nil {
		t.Fatal(err)
	}
	if sys.Android.Flinger.Screen().Checksum() != before {
		t.Fatal("reload changed pixels")
	}
	if app.Profiler.Calls("glDeleteTextures") == 0 {
		t.Fatal("reload produced no texture teardown")
	}
}

func TestJITGatingThroughPort(t *testing.T) {
	// Under Cycada the port's JS engine must come up in interpreter mode.
	b, _, _ := cycadaBrowser(t)
	if err := b.Load(page); err != nil {
		t.Fatal(err)
	}
	if b.JS().JITEnabled() {
		t.Fatal("JIT enabled under the Mach VM bug")
	}
	// On native iOS it comes up with JIT unless explicitly disabled.
	ios := iosys.New(iosys.Config{})
	us, err := ios.NewUserspace("safari")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(opts ...jsvm.Option) *webkit.Browser {
		port, err := iosport.New(iosport.Config{
			Proc: us.Proc, EAGL: us.EAGL, GL: us.GL, Surfaces: us.Surfaces,
			NewLayer: us.NewLayer, W: 128, H: 96, JSOptions: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		br := webkit.NewBrowser(port)
		if err := br.Load(page); err != nil {
			t.Fatal(err)
		}
		return br
	}
	if !mk().JS().JITEnabled() {
		t.Fatal("JIT disabled on native iOS")
	}
	if mk(jsvm.WithoutJIT()).JS().JITEnabled() {
		t.Fatal("WithoutJIT ignored by port")
	}
}

func TestScriptErrorsSurface(t *testing.T) {
	b, _, _ := cycadaBrowser(t)
	err := b.Load(strings.Replace(page, "ran", "", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunScript(`totally.broken()`); err == nil {
		t.Fatal("broken script succeeded")
	}
	badPage := `<body><script>syntax error here(</script></body>`
	if err := b.Load(badPage); err == nil {
		t.Fatal("page with broken script loaded")
	}
}
